"""The model server: replica pool + dynamic batcher + HTTP front end.

A :class:`ModelServer` owns one or more *replicas* — forward-only
compiled copies of the same network — and a
:class:`~repro.serve.batcher.DynamicBatcher`. Each replica gets a
worker thread that loops: take the next micro-batch, zero-pad it to the
compiled batch size if ragged, run ``forward``, slice the real rows
back out, and complete the per-request handles. Replicas share
parameter storage through ``CompiledNet.rebind_buffer`` — one set of
weight arrays serves every worker, so N replicas cost N× activation
memory but 1× parameter memory.

Observability is three-layered (docs/OBSERVABILITY.md):

* **metrics** — every server owns a
  :class:`~repro.telemetry.metrics.MetricsRegistry`: request counters
  by outcome, fixed-bucket latency and batch-fill histograms,
  per-replica step latency, live queue depth, planned/arena bytes, and
  checkpoint age. ``GET /metrics`` renders it in Prometheus text
  format, and :meth:`ModelServer.stats` reads the *same* registry (no
  private sample lists — the old unbounded latency window is gone by
  construction).
* **request IDs** — every submitted item carries a ``request_id``
  (client-supplied ``X-Request-ID`` header or generated), propagated
  through batcher admission into the worker's ``serve``-category span,
  the executor's step spans (via ``CompiledNet.trace_context``), the
  structured log lines, and the response.
* **structured logs** — one JSON line per completed request and per
  batch flush on the ``repro.serve`` logger (silent until a handler is
  attached; ``python -m repro.serve`` configures one).

``make_http_server`` wraps a :class:`ModelServer` in a stdlib
``ThreadingHTTPServer`` with ``POST /predict``, ``GET /healthz``,
``GET /stats`` and ``GET /metrics`` endpoints; ``python -m
repro.serve`` is the CLI (see :mod:`repro.serve.__main__`).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serve.batcher import (
    BatcherClosedError,
    DynamicBatcher,
    QueueFullError,
    Request,
)
from repro.telemetry.logging import get_logger, log_event, new_request_id
from repro.telemetry.metrics import FILL_BUCKETS, MetricsRegistry
from repro.trace import NULL_TRACER


class ModelServer:
    """Serve single-item prediction requests over replica workers.

    Parameters
    ----------
    replicas:
        Forward-only ``CompiledNet`` replicas of one network, all at the
        same batch size. Replica 0 owns the parameter storage; the rest
        are rebound onto it at construction (``share_params=False``
        skips that, for replicas that are already sharing).
    output:
        Ensemble whose value array is the prediction (sliced per row).
    max_latency:
        Seconds the oldest queued request may wait before a ragged
        flush (the batcher's latency trigger).
    max_queue:
        Admission bound; beyond it :meth:`submit` sheds with
        :class:`~repro.serve.batcher.QueueFullError`.
    data_name / label_name:
        DataEnsemble fed with request items / zero-filled dummy labels
        (loss-bearing training graphs still expect a label input at
        forward time; ``None`` if the net has no label ensemble —
        detected automatically by default).
    registry:
        The :class:`~repro.telemetry.metrics.MetricsRegistry` all
        serving metrics land in (a fresh one by default; pass
        :data:`~repro.telemetry.metrics.NULL_REGISTRY` to disable, or a
        shared registry to co-locate with other subsystems' metrics).
    logger:
        Structured-log target (default: the ``repro.serve`` stdlib
        logger — silent until a handler is attached; see
        :func:`repro.telemetry.logging.configure_json_logging`).
    checkpoint_path / checkpoint_mtime:
        Provenance of the served parameters; when the mtime is known, a
        ``serve_checkpoint_age_seconds`` gauge reports artifact age at
        scrape time (set automatically by :meth:`from_checkpoint`).
    """

    def __init__(self, replicas: Sequence, output: str, *,
                 max_latency: float = 0.005, max_queue: int = 64,
                 data_name: str = "data",
                 label_name: Optional[str] = "auto",
                 share_params: bool = True, tracer=None,
                 registry=None, logger=None,
                 checkpoint_path: Optional[str] = None,
                 checkpoint_mtime: Optional[float] = None):
        if not replicas:
            raise ValueError("need at least one replica")
        batches = {r.batch_size for r in replicas}
        if len(batches) != 1:
            raise ValueError(f"replicas disagree on batch size: {batches}")
        self.replicas = list(replicas)
        self.output = output
        self.batch_size = self.replicas[0].batch_size
        self.data_name = data_name
        if label_name == "auto":
            label_name = ("label" if "label"
                          in self.replicas[0]._data_names else None)
        self.label_name = label_name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.logger = logger if logger is not None else get_logger()
        #: numeric precision the replicas were compiled at — a label on
        #: the request counters, so mixed-precision fleets stay tellable
        #: apart on one aggregated /metrics page
        self.precision = str(getattr(
            getattr(self.replicas[0], "options", None), "precision", "fp32"
        ))
        self.checkpoint_path = checkpoint_path
        self.checkpoint_mtime = checkpoint_mtime
        self.item_shape = tuple(
            self.replicas[0].value(data_name).shape[1:]
        )
        if share_params and len(self.replicas) > 1:
            primary = self.replicas[0]
            for replica in self.replicas[1:]:
                for info in replica.plan.params:
                    replica.rebind_buffer(
                        info.value_buf, primary.buffers[info.value_buf]
                    )
        self.batcher = DynamicBatcher(self.batch_size, max_latency,
                                      max_queue)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._init_metrics()
        self._workers = [
            threading.Thread(target=self._worker_loop, args=(i,),
                             name=f"serve-worker-{i}", daemon=True)
            for i in range(len(self.replicas))
        ]
        self._closed = False
        for w in self._workers:
            w.start()

    def _init_metrics(self) -> None:
        """Register the serving metric families (idempotent per
        registry, so several servers may share one)."""
        r = self.registry
        self._m_requests = r.counter(
            "serve_requests_total",
            "Prediction requests by outcome (served|shed|error) and "
            "compile precision (fp32|fp16|int8)",
            labels=("outcome", "precision"),
        )
        # pre-touch the outcomes so a scrape before traffic shows zeros
        for outcome in ("served", "shed", "error"):
            self._m_requests.inc(0, outcome=outcome,
                                 precision=self.precision)
        self._m_latency = r.histogram(
            "serve_request_latency_seconds",
            "End-to-end request latency, submit to completion",
        )
        self._m_batches = r.counter(
            "serve_batches_total", "Micro-batches executed, per replica",
            labels=("replica",),
        )
        self._m_step_latency = r.histogram(
            "serve_replica_step_seconds",
            "Per-replica forward step latency (one micro-batch)",
            labels=("replica",),
        )
        self._m_fill = r.histogram(
            "serve_batch_fill",
            "Fraction of batch slots holding real requests",
            buckets=FILL_BUCKETS,
        )
        r.gauge("serve_queue_depth",
                "Requests waiting for batch assembly",
                fn=self.batcher.depth)
        r.gauge("serve_replicas", "Replica workers").set(len(self.replicas))
        r.gauge("serve_batch_size", "Compiled batch size").set(
            self.batch_size)
        mstats = self.replicas[0].memory_stats()
        r.gauge("serve_planned_bytes",
                "Per-replica planned (post-reuse) buffer bytes").set(
            mstats["planned_bytes"])
        r.gauge("serve_arena_bytes",
                "Per-replica shared arena bytes").set(mstats["arena_bytes"])
        if self.checkpoint_mtime is not None:
            mtime = float(self.checkpoint_mtime)
            r.gauge("serve_checkpoint_age_seconds",
                    "Age of the served checkpoint artifact",
                    fn=lambda: max(0.0, time.time() - mtime))
        # compile-cache provenance: how many replica compiles were warm
        # thaws vs cold compiles, and how stale the warm entry is (only
        # populated when the replicas went through repro.cache)
        reports = [getattr(rep, "compile_report", None)
                   for rep in self.replicas]
        reports = [rp for rp in reports if rp is not None
                   and rp.cache_key is not None]
        if reports:
            hits = sum(1 for rp in reports if rp.cache_hit)
            r.counter(
                "serve_compile_cache_hits_total",
                "Replica compiles thawed from the compilation cache",
            ).inc(hits)
            r.counter(
                "serve_compile_cache_misses_total",
                "Replica compiles that ran cold and seeded the cache",
            ).inc(len(reports) - hits)
            created = [rp.cache_created for rp in reports
                       if rp.cache_hit and rp.cache_created is not None]
            if created:
                oldest = min(created)
                r.gauge("serve_compile_cache_age_seconds",
                        "Age of the oldest thawed compile-cache entry",
                        fn=lambda: max(0.0, time.time() - oldest))

    # -- client API ---------------------------------------------------------

    def submit(self, item: np.ndarray,
               request_id: Optional[str] = None) -> Request:
        """Enqueue one item (no batch axis); returns a waitable
        :class:`~repro.serve.batcher.Request` carrying ``request_id``
        (generated if not supplied). Sheds with
        :class:`~repro.serve.batcher.QueueFullError` when the queue is
        at capacity."""
        item = np.asarray(item, dtype=np.float32)
        if item.shape != self.item_shape:
            raise ValueError(
                f"item shape {item.shape} != expected {self.item_shape}"
            )
        rid = request_id or new_request_id()
        try:
            req = self.batcher.submit(item, request_id=rid)
        except QueueFullError as exc:
            self._m_requests.inc(outcome="shed", precision=self.precision)
            log_event(self.logger, "shed", request_id=rid,
                      reason=exc.reason, queue_depth=exc.depth)
            raise
        self.tracer.metric("serve.queue_depth", self.batcher.depth())
        return req

    def predict(self, item: np.ndarray,
                timeout: Optional[float] = 30.0,
                request_id: Optional[str] = None) -> np.ndarray:
        """Blocking single-item convenience: submit + wait."""
        return self.submit(item, request_id=request_id).wait(timeout)

    # -- worker side --------------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        replica = self.replicas[index]
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            self._run_batch(replica, batch, index)

    def _run_batch(self, replica, batch: List[Request],
                   index: int) -> None:
        n = len(batch)
        ids = [req.request_id for req in batch]
        ids_csv = ",".join(ids)
        x = np.zeros((self.batch_size,) + self.item_shape, np.float32)
        for i, req in enumerate(batch):
            x[i] = req.item
        inputs = {self.data_name: x}
        if self.label_name is not None:
            inputs[self.label_name] = np.zeros(
                replica.value(self.label_name).shape, np.float32
            )
        t0 = time.monotonic()
        try:
            if self.tracer.enabled:
                # request identity flows into the executor's own step
                # spans for this forward (replica-owned, single worker)
                replica.trace_context = {"request_ids": ids_csv}
            try:
                with self.tracer.span("serve.batch", "serve",
                                      replica=index, rows=n,
                                      batch=self.batch_size,
                                      request_ids=ids_csv):
                    replica.forward(**inputs)
            finally:
                replica.trace_context = None
            out = replica.value(self.output)[:n].copy()
        except BaseException as exc:  # complete waiters, then bookkeep
            for req in batch:
                req.fail(exc)
            self._m_requests.inc(n, outcome="error",
                                 precision=self.precision)
            log_event(self.logger, "batch_error", replica=index,
                      request_ids=ids, error=str(exc),
                      error_type=type(exc).__name__)
            return
        step_seconds = time.monotonic() - t0
        now = time.monotonic()
        for i, req in enumerate(batch):
            req.complete(out[i], now - req.enqueued_at)
        rep = str(index)
        self._m_requests.inc(n, outcome="served", precision=self.precision)
        self._m_batches.inc(replica=rep)
        self._m_step_latency.observe(step_seconds, replica=rep)
        self._m_fill.observe(n / self.batch_size)
        for req in batch:
            self._m_latency.observe(req.latency)
            self.tracer.metric("serve.latency_ms", req.latency * 1e3,
                               replica=index)
            log_event(self.logger, "request",
                      request_id=req.request_id, replica=index,
                      latency_ms=round(req.latency * 1e3, 3))
        self.tracer.metric("serve.batch_fill", n / self.batch_size,
                           replica=index)
        log_event(self.logger, "batch_flush", replica=index, rows=n,
                  batch_size=self.batch_size,
                  fill=round(n / self.batch_size, 4),
                  step_ms=round(step_seconds * 1e3, 3),
                  request_ids=ids)

    # -- introspection ------------------------------------------------------

    def metrics_text(self) -> str:
        """The Prometheus exposition page ``GET /metrics`` serves — the
        in-process registry rendered. The multi-process pool
        (:class:`~repro.serve.procserver.ProcessServerPool`) overrides
        this with an aggregation of every worker's page."""
        return self.registry.render()

    def stats(self) -> Dict[str, object]:
        """Counters plus request-latency percentiles (milliseconds),
        all derived from the metrics registry — the identical numbers
        ``GET /metrics`` exposes, reduced to one JSON object. The
        percentiles come from fixed histogram buckets, so state stays
        bounded regardless of traffic."""
        lat = self._m_latency
        out: Dict[str, object] = {
            "served": int(self._m_requests.value(
                outcome="served", precision=self.precision)),
            "shed": int(self._m_requests.value(
                outcome="shed", precision=self.precision)),
            "batches": int(self._m_batches.total()),
            "replicas": len(self.replicas),
            "batch_size": self.batch_size,
            "precision": self.precision,
            "queue_depth": self.batcher.depth(),
            "mean_batch_fill": round(self._m_fill.mean(), 4),
            # per-replica forward-only arena footprint (inference
            # compiles plan a smaller arena than train graphs)
            "planned_bytes": int(
                self.replicas[0].memory_stats()["planned_bytes"]
            ),
        }
        if lat.count():
            out["latency_ms"] = {
                "p50": round(1e3 * lat.quantile(0.50), 3),
                "p95": round(1e3 * lat.quantile(0.95), 3),
                "p99": round(1e3 * lat.quantile(0.99), 3),
                "mean": round(1e3 * lat.mean(), 3),
            }
        return out

    # -- lifecycle ----------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Drain and stop: refuse new work, serve everything queued,
        join the workers, release the replicas. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.batcher.shutdown()
        for w in self._workers:
            w.join(timeout)
        for replica in self.replicas:
            replica.close()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @classmethod
    def from_checkpoint(cls, path: str, *, batch_size: int = 8,
                        replicas: int = 1, options=None,
                        output: Optional[str] = None,
                        num_threads: Optional[int] = None,
                        tracer=None, cache=None, precision=None,
                        calibration=None, **kwargs) -> "ModelServer":
        """Boot a server from a checkpoint artifact: rebuild the
        architecture, compile ``replicas`` forward-only copies at
        ``batch_size``, restore parameters once, and share them. The
        artifact's mtime feeds the ``serve_checkpoint_age_seconds``
        gauge.

        Pass ``cache=`` (a ``repro.cache.CompileCache``, a directory
        path, or ``True`` for the default store) to compile through the
        persistent compilation cache: a pre-warmed entry turns boot into
        a millisecond thaw, and even cold the first replica's compile
        seeds the cache so replicas 2..N (and the next boot) are warm.
        Hit/miss counts and entry age land in the metrics registry
        (``serve_compile_cache_*``).

        ``precision``/``calibration`` compile the replicas at reduced
        inference precision (docs/QUANTIZATION.md); ``calibration`` may
        be a :class:`repro.quant.CalibrationResult` or a path to a
        saved range profile, and is required for ``precision='int8'``."""
        import os

        from repro.serve.checkpoint import load_checkpoint

        ck = load_checkpoint(path)
        out = output or ck.output
        if out is None:
            raise ValueError(
                "checkpoint records no output ensemble; pass output="
            )
        nets = [
            ck.compile(batch_size, options=options,
                       num_threads=num_threads, tracer=tracer,
                       cache=cache, precision=precision,
                       calibration=calibration)
            for _ in range(replicas)
        ]
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            mtime = None
        kwargs.setdefault("checkpoint_path", path)
        kwargs.setdefault("checkpoint_mtime", mtime)
        return cls(nets, out, tracer=tracer, **kwargs)


# ---------------------------------------------------------------------------
# HTTP front end (stdlib only)
# ---------------------------------------------------------------------------


def make_http_server(server, host: str = "127.0.0.1",
                     port: int = 8080) -> ThreadingHTTPServer:
    """A ``ThreadingHTTPServer`` exposing ``server`` — a
    :class:`ModelServer` or anything with the same ``submit`` /
    ``stats`` / ``metrics_text`` surface (the multi-process
    :class:`~repro.serve.procserver.ProcessServerPool` plugs in here
    unchanged):

    * ``POST /predict`` — body ``{"inputs": [item, ...]}`` where each
      item is a nested list matching the model's input shape; responds
      ``{"outputs": [...], "request_id": ..., "latency_ms": ...}``.
      The request ID is taken from an ``X-Request-ID`` header when
      present (else generated), echoed in the response header and
      body, and propagated into batcher admission, worker spans, and
      log lines. Answers 429 when the batcher sheds — the body carries
      ``request_id``, ``queue_depth``, and the ``shed`` reason — and
      400 on malformed bodies.
    * ``GET /healthz`` — liveness.
    * ``GET /stats`` — the :meth:`ModelServer.stats` JSON.
    * ``GET /metrics`` — the metrics registry in Prometheus text
      exposition format.

    Call ``serve_forever()`` on the result (or ``handle_request()`` in
    tests); ``shutdown()`` + ``ModelServer.close()`` to stop.
    """

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _send(self, code: int, body: bytes, content_type: str,
                  headers: Optional[Dict[str, str]] = None) -> None:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _reply(self, code: int, payload: dict,
                   headers: Optional[Dict[str, str]] = None) -> None:
            self._send(code, json.dumps(payload).encode(),
                       "application/json", headers)

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            if self.path == "/healthz":
                self._reply(200, {"ok": True})
            elif self.path == "/stats":
                self._reply(200, server.stats())
            elif self.path == "/metrics":
                self._send(200, server.metrics_text().encode(),
                           "text/plain; version=0.0.4; charset=utf-8")
            else:
                self._reply(404, {"error": f"no route {self.path}"})

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            if self.path != "/predict":
                self._reply(404, {"error": f"no route {self.path}"})
                return
            t0 = time.monotonic()
            rid = self.headers.get("X-Request-ID") or new_request_id()
            echo = {"X-Request-ID": rid}
            try:
                length = int(self.headers.get("Content-Length", 0))
                payload = json.loads(self.rfile.read(length))
                items = payload["inputs"]
            except (ValueError, KeyError, TypeError) as exc:
                self._reply(400, {"error": f"bad request body: {exc}",
                                  "request_id": rid}, echo)
                return
            # multi-item bodies fan out to per-item request IDs so each
            # row stays traceable; a single item keeps the ID verbatim
            item_ids = ([rid] if len(items) == 1
                        else [f"{rid}/{i}" for i in range(len(items))])
            try:
                handles = [
                    server.submit(np.asarray(item, np.float32),
                                  request_id=item_id)
                    for item, item_id in zip(items, item_ids)
                ]
            except QueueFullError as exc:
                self._reply(429, {
                    "error": "overloaded, retry later",
                    "request_id": rid,
                    "queue_depth": exc.depth,
                    "shed": exc.reason,
                }, echo)
                return
            except (ValueError, BatcherClosedError) as exc:
                self._reply(400, {"error": str(exc), "request_id": rid},
                            echo)
                return
            try:
                outputs = [h.wait(30.0).tolist() for h in handles]
            except BaseException as exc:
                self._reply(500, {"error": str(exc), "request_id": rid},
                            echo)
                return
            self._reply(200, {
                "outputs": outputs,
                "request_id": rid,
                "latency_ms": round(1e3 * (time.monotonic() - t0), 3),
            }, echo)

        def log_message(self, fmt, *args):  # quiet by default
            pass

    return ThreadingHTTPServer((host, port), Handler)
