"""Versioned model checkpoints: one ``.npz`` artifact per snapshot.

A checkpoint bundles everything needed to reconstruct a trained network
in a fresh process:

* every parameter array, keyed by the solver-facing ``ensemble.field``
  names of :meth:`CompiledNet.parameters`;
* a JSON metadata record — format tag, version, batch size, output
  ensemble, completed-epoch counter, and a *builder* description of the
  architecture (a type-tagged :class:`~repro.models.ModelConfig`
  rendering, or a fuzz-generator ``NetSpec``) so the net can be rebuilt
  without the code that first constructed it;
* optionally: per-parameter solver state (momentum buffers etc.) plus
  the library RNG state and loss history, which is what makes a resumed
  training run bitwise-identical to an uninterrupted one (see
  ``solve(checkpoint_every=...)``).

Versioning policy: ``VERSION`` is bumped when the layout changes in a
way old readers cannot handle. Readers accept any file whose major
format tag matches and whose version is ≤ theirs; newer files are
refused with an actionable error rather than misread. Unknown metadata
keys are ignored, so additive changes do not need a bump.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np

FORMAT = "latte-checkpoint"
VERSION = 1

_META_KEY = "__meta__"
_PARAM_PREFIX = "param/"
_SOLVER_PREFIX = "solver/"


class CheckpointError(RuntimeError):
    """Malformed, incompatible, or mismatched checkpoint artifact."""


def _solver_key(param_key: str, slot: str) -> str:
    return f"{_SOLVER_PREFIX}{param_key}/{slot}"


def save_checkpoint(
    path: str,
    cnet,
    *,
    config=None,
    spec=None,
    output: Optional[str] = None,
    solver=None,
    epoch: int = 0,
    history=None,
    rng=None,
) -> str:
    """Write one ``.npz`` checkpoint of ``cnet`` to ``path``.

    ``config`` (a :class:`~repro.models.ModelConfig`) or ``spec`` (a
    ``repro.testing.generator.NetSpec``) records how to rebuild the
    architecture; pass one of them if the checkpoint must cold-start a
    server in a fresh process. ``solver``/``history``/``rng`` capture
    training-loop state for bitwise-identical resume; ``epoch`` is the
    number of *completed* epochs. The file is written atomically
    (temp file + rename), so a checkpoint interrupted mid-write never
    replaces a good one.
    """
    if config is not None and spec is not None:
        raise ValueError("pass config= or spec=, not both")
    builder: Optional[dict] = None
    if config is not None:
        from repro.models.configs import config_to_dict

        builder = {"kind": "model_config", "config": config_to_dict(config)}
    elif spec is not None:
        builder = {"kind": "net_spec", "spec": spec.to_dict()}

    arrays: Dict[str, np.ndarray] = {}
    param_meta = []
    for p in cnet.parameters():
        arrays[_PARAM_PREFIX + p.key] = p.value
        param_meta.append({"key": p.key, "shape": list(p.value.shape)})

    solver_meta = None
    if solver is not None:
        slots: Dict[str, list] = {}
        for param_key, st in solver.state.items():
            slots[param_key] = sorted(st)
            for slot, arr in st.items():
                arrays[_solver_key(param_key, slot)] = np.asarray(arr)
        solver_meta = {
            "type": type(solver).__name__,
            "iteration": int(solver.iteration),
            "slots": slots,
        }

    meta = {
        "format": FORMAT,
        "version": VERSION,
        "batch_size": int(cnet.batch_size),
        "output": output,
        "epoch": int(epoch),
        "builder": builder,
        "params": param_meta,
        "solver": solver_meta,
        "rng_state": rng.bit_generator.state if rng is not None else None,
        "history": {
            "losses": list(history.losses),
            "train_accuracy": list(history.train_accuracy),
            "test_accuracy": list(history.test_accuracy),
        } if history is not None else None,
    }
    arrays[_META_KEY] = np.asarray(json.dumps(meta))

    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


@dataclass
class Checkpoint:
    """A loaded checkpoint: metadata plus materialized arrays."""

    meta: dict
    params: Dict[str, np.ndarray]
    solver_state: Dict[str, Dict[str, np.ndarray]] = field(
        default_factory=dict
    )

    # -- metadata accessors -------------------------------------------------

    @property
    def version(self) -> int:
        return int(self.meta["version"])

    @property
    def batch_size(self) -> int:
        return int(self.meta["batch_size"])

    @property
    def output(self) -> Optional[str]:
        return self.meta.get("output")

    @property
    def epoch(self) -> int:
        return int(self.meta.get("epoch", 0))

    @property
    def history(self) -> Optional[dict]:
        return self.meta.get("history")

    # -- reconstruction -----------------------------------------------------

    def build(self, batch_size: Optional[int] = None):
        """Reconstruct the (uncompiled) architecture from the builder
        record, optionally at a different batch size. Returns a
        :class:`~repro.models.BuiltModel` for ``model_config`` builders
        or a bare :class:`~repro.core.Net` for ``net_spec`` builders."""
        builder = self.meta.get("builder")
        if builder is None:
            raise CheckpointError(
                "checkpoint has no builder record: it was saved without "
                "config=/spec= and can only restore parameters into a "
                "net you construct yourself"
            )
        batch = batch_size if batch_size is not None else self.batch_size
        if builder["kind"] == "model_config":
            from repro.models import build_latte
            from repro.models.configs import config_from_dict

            return build_latte(config_from_dict(builder["config"]), batch)
        if builder["kind"] == "net_spec":
            from repro.testing.generator import NetSpec, build_net

            spec = NetSpec.from_dict(builder["spec"])
            return build_net(replace(spec, batch=batch))
        raise CheckpointError(f"unknown builder kind {builder['kind']!r}")

    def compile(self, batch_size: Optional[int] = None, options=None,
                tracer=None, num_threads=None, keep_alive=None,
                cache=None, precision=None, calibration=None):
        """Rebuild, compile, and restore parameters in one call — the
        server cold-start path. Defaults to forward-only compilation
        (``CompilerOptions.inference()``).

        Pass ``cache=`` (a ``repro.cache.CompileCache``, a directory
        path, or ``True`` for the default store) to route the compile
        through the persistent compilation cache: a warm entry skips
        synthesis and every pass, turning cold-start into a
        millisecond thaw (see docs/COMPILE_CACHE.md). Parameters are
        restored either way, so hit and miss produce bitwise-identical
        servers.

        ``precision`` (``'fp32'``/``'fp16'``/``'int8'``) overrides the
        options' precision field — the serving spelling of reduced-
        precision inference (docs/QUANTIZATION.md). ``'int8'`` needs
        ``calibration`` (a :class:`repro.quant.CalibrationResult` or a
        path to one saved as JSON).
        """
        import dataclasses

        from repro.optim.pipeline import CompilerOptions

        options = options or CompilerOptions.inference()
        if precision is not None and precision != options.precision:
            options = dataclasses.replace(options, precision=precision)
        if isinstance(calibration, str):
            from repro.quant import CalibrationResult

            calibration = CalibrationResult.load(calibration)
        builder = self.meta.get("builder")
        if cache is not None and cache is not False and builder is not None:
            from repro.cache import compile_cached

            cnet = compile_cached(
                builder,
                batch_size if batch_size is not None else self.batch_size,
                options=options, tracer=tracer, num_threads=num_threads,
                keep_alive=keep_alive,
                cache=None if cache is True else cache,
                calibration=calibration,
            )
            self.restore_params(cnet)
            return cnet
        built = self.build(batch_size)
        net = getattr(built, "net", built)
        cnet = net.init(options, tracer=tracer, num_threads=num_threads,
                        keep_alive=keep_alive, calibration=calibration)
        self.restore_params(cnet)
        return cnet

    # -- state restoration --------------------------------------------------

    def restore_params(self, cnet, strict: bool = True) -> None:
        """Copy parameter arrays into ``cnet``'s parameter views.

        With ``strict`` (default) the checkpoint and the net must carry
        exactly the same parameter keys and shapes.
        """
        views = {p.key: p for p in cnet.parameters()}
        if strict:
            missing = sorted(set(views) - set(self.params))
            extra = sorted(set(self.params) - set(views))
            if missing or extra:
                raise CheckpointError(
                    f"parameter mismatch: net wants {missing or '[]'} the "
                    f"checkpoint lacks; checkpoint carries {extra or '[]'} "
                    f"the net lacks"
                )
        for key, arr in self.params.items():
            view = views.get(key)
            if view is None:
                continue
            if view.value.shape != arr.shape:
                raise CheckpointError(
                    f"parameter {key!r}: checkpoint shape {arr.shape} vs "
                    f"net shape {view.value.shape}"
                )
            view.value[...] = arr

    def restore_solver(self, solver) -> None:
        """Restore iteration counter and per-parameter state arrays."""
        info = self.meta.get("solver")
        if info is None:
            raise CheckpointError("checkpoint carries no solver state")
        solver.iteration = int(info["iteration"])
        solver.state = {
            param_key: {slot: arr.copy() for slot, arr in slots.items()}
            for param_key, slots in self.solver_state.items()
        }

    def restore_rng(self, rng) -> None:
        """Restore a ``numpy.random.Generator``'s state *in place*, so
        every closure holding a reference to it (dropout mask sampling,
        the training loop's shuffle) resumes the saved stream."""
        state = self.meta.get("rng_state")
        if state is None:
            raise CheckpointError("checkpoint carries no RNG state")
        rng.bit_generator.state = state


def load_checkpoint(path: str) -> Checkpoint:
    """Read and validate a checkpoint written by :func:`save_checkpoint`.

    Refuses files with a foreign format tag or a version newer than this
    reader (see the module docstring's versioning policy).
    """
    with np.load(path, allow_pickle=False) as z:
        if _META_KEY not in z:
            raise CheckpointError(
                f"{path}: not a {FORMAT} artifact (missing {_META_KEY})"
            )
        meta = json.loads(str(z[_META_KEY]))
        if meta.get("format") != FORMAT:
            raise CheckpointError(
                f"{path}: format {meta.get('format')!r}, expected {FORMAT!r}"
            )
        if int(meta.get("version", 0)) > VERSION:
            raise CheckpointError(
                f"{path}: checkpoint version {meta['version']} is newer "
                f"than this reader (max {VERSION}); upgrade the library"
            )
        params = {
            name[len(_PARAM_PREFIX):]: z[name]
            for name in z.files
            if name.startswith(_PARAM_PREFIX)
        }
        solver_state: Dict[str, Dict[str, np.ndarray]] = {}
        info = meta.get("solver")
        if info is not None:
            for param_key, slots in info["slots"].items():
                solver_state[param_key] = {
                    slot: z[_solver_key(param_key, slot)] for slot in slots
                }
    return Checkpoint(meta, params, solver_state)
