"""``python -m repro.serve`` — boot a model server from a checkpoint.

Example::

    python -m repro.serve --checkpoint model.npz --port 8080 \\
        --batch-size 8 --replicas 2 --max-latency-ms 5

then::

    curl -s localhost:8080/healthz
    curl -s -X POST localhost:8080/predict \\
        -H 'X-Request-ID: my-trace-1' \\
        -d '{"inputs": [[...one item...]]}'
    curl -s localhost:8080/stats
    curl -s localhost:8080/metrics

Structured JSON request/batch logs go to stderr (one object per
line); the human-readable announce line stays on stdout.
"""

from __future__ import annotations

import argparse
import sys

from repro.serve.server import ModelServer, make_http_server
from repro.telemetry.logging import configure_json_logging


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a Latte checkpoint over HTTP with dynamic "
                    "micro-batching (see docs/SERVING.md).",
    )
    ap.add_argument("--checkpoint", required=True,
                    help="path to a .npz checkpoint with a builder record")
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8080)
    ap.add_argument("--batch-size", type=int, default=8,
                    help="compiled batch size = max micro-batch size")
    ap.add_argument("--replicas", type=int, default=1,
                    help="worker replicas sharing one parameter set")
    ap.add_argument("--workers", type=int, default=0,
                    help="run N ModelServer worker *processes* behind "
                    "the front end instead of in-process replica "
                    "threads (docs/DISTRIBUTED.md); each worker gets "
                    "--replicas replicas")
    ap.add_argument("--max-latency-ms", type=float, default=5.0,
                    help="oldest-request age that forces a ragged flush")
    ap.add_argument("--max-queue", type=int, default=64,
                    help="admission bound; beyond it requests get 429")
    ap.add_argument("--output", default=None,
                    help="output ensemble (default: recorded in the "
                    "checkpoint)")
    ap.add_argument("--threads", type=int, default=None,
                    help="executor threads per replica")
    ap.add_argument("--compile-cache", nargs="?", const=True, default=None,
                    metavar="DIR",
                    help="compile through the persistent compilation "
                    "cache: warm boots skip every compiler pass "
                    "(docs/COMPILE_CACHE.md). Optional DIR overrides "
                    "REPRO_CACHE_DIR / ~/.cache/latte-repro/compile")
    ap.add_argument("--precision", default="fp32",
                    help="inference numeric precision: fp32 (default), "
                    "fp16, or int8 (docs/QUANTIZATION.md); int8 also "
                    "needs --calibration")
    ap.add_argument("--calibration", default=None, metavar="JSON",
                    help="calibration range profile saved by "
                    "repro.quant.CalibrationResult.save (required for "
                    "--precision int8)")
    args = ap.parse_args(argv)

    # validate the topology/precision flags up front — a bad value
    # should be one clear line here, not a traceback (or a boot_error)
    # from deep inside a worker process
    if args.workers < 0:
        ap.error(f"--workers must be >= 0, got {args.workers}")
    if args.replicas < 1:
        ap.error(f"--replicas must be >= 1, got {args.replicas}")
    if args.batch_size < 1:
        ap.error(f"--batch-size must be >= 1, got {args.batch_size}")
    if args.precision not in ("fp32", "fp16", "int8"):
        ap.error(f"--precision must be fp32, fp16 or int8, "
                 f"got {args.precision!r}")
    if args.precision == "int8" and args.calibration is None:
        ap.error("--precision int8 requires --calibration (a range "
                 "profile saved by repro.quant.CalibrationResult.save; "
                 "see docs/QUANTIZATION.md)")
    if args.calibration is not None:
        import os

        if not os.path.isfile(args.calibration):
            ap.error(f"--calibration file not found: {args.calibration}")

    configure_json_logging()
    if args.workers and args.workers > 0:
        from repro.serve.procserver import ProcessServerPool

        server = ProcessServerPool(
            args.checkpoint,
            workers=args.workers,
            batch_size=args.batch_size,
            replicas=args.replicas,
            output=args.output,
            num_threads=args.threads,
            max_latency=args.max_latency_ms / 1e3,
            max_queue=args.max_queue,
            cache=args.compile_cache,
            precision=args.precision,
            calibration=args.calibration,
        )
        topology = (f"workers={args.workers} processes × "
                    f"{args.replicas} replica(s)")
    else:
        server = ModelServer.from_checkpoint(
            args.checkpoint,
            batch_size=args.batch_size,
            replicas=args.replicas,
            output=args.output,
            num_threads=args.threads,
            max_latency=args.max_latency_ms / 1e3,
            max_queue=args.max_queue,
            cache=args.compile_cache,
            precision=args.precision,
            calibration=args.calibration,
        )
        topology = f"replicas={len(server.replicas)}"
    httpd = make_http_server(server, args.host, args.port)
    host, port = httpd.server_address[:2]
    print(f"serving {args.checkpoint} on http://{host}:{port} "
          f"(batch={server.batch_size}, {topology}, "
          f"precision={args.precision}) "
          f"— POST /predict, GET /healthz, GET /stats, GET /metrics",
          flush=True)
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
