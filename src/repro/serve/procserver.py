"""Multi-process serving: ModelServer replicas as worker processes.

The thread-based :class:`~repro.serve.server.ModelServer` scales until
the GIL does not: replicas interleave Python-side batching and NumPy
kernels inside one interpreter. :class:`ProcessServerPool` reuses the
fork-based worker machinery from :mod:`repro.runtime.procpool` on the
serving side — N worker **processes**, each booting its own
``ModelServer.from_checkpoint`` (through the compile cache, so every
worker boot is a warm thaw once the first has seeded it), behind the
same HTTP front end (`python -m repro.serve --workers N`).

Coordinator design (the parent stays light — it never loads the model):

* **dispatch** — :meth:`submit` picks the least-loaded live worker,
  applies per-worker admission control (a full worker sheds with
  :class:`~repro.serve.batcher.QueueFullError` → HTTP 429 exactly like
  the thread server), and ships ``(seq, request_id, item)`` over the
  worker's pipe. The ``request_id`` crosses the process boundary and
  lands in the worker's batcher admission, spans, and structured logs.
* **completion** — one reader thread per worker correlates replies by
  ``seq`` and completes the parent-side
  :class:`~repro.serve.batcher.Request` handles (same waitable object
  the thread server hands out).
* **failure** — replies are polled alongside ``Process.is_alive`` and a
  heartbeat thread pings every worker: a dead or hung worker fails its
  pending requests with a structured
  :class:`~repro.runtime.procpool.WorkerDiedError` (never a hung
  ``wait``), increments ``serve_worker_restarts_total``, and is
  replaced by a freshly forked worker when ``restart=True``.
* **observability** — :meth:`metrics_text` merges the parent registry
  with every worker's scraped page, each worker's samples gaining a
  ``worker="k"`` label
  (:func:`repro.telemetry.metrics.merge_metrics_pages`), so one
  ``GET /metrics`` shows pool-level counters *and* per-worker serving
  metrics; :meth:`stats` aggregates the workers' stats JSON.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.procpool import (
    ProcessPoolUnavailable,
    WorkerDiedError,
    WorkerError,
    _fork_context,
)
from repro.serve.batcher import BatcherClosedError, QueueFullError, Request
from repro.telemetry.logging import get_logger, log_event, new_request_id
from repro.telemetry.metrics import MetricsRegistry, merge_metrics_pages


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker process needs to boot its ModelServer
    (inherited over fork — never pickled)."""

    checkpoint: str
    batch_size: int
    replicas: int
    output: Optional[str]
    max_latency: float
    max_queue: int
    num_threads: Optional[int]
    cache: object
    predict_timeout: float
    precision: Optional[str] = None
    calibration: object = None


def _serve_worker_main(spec: _WorkerSpec, conn, inherited) -> None:
    """Worker process body: boot a ModelServer from the checkpoint and
    serve ``predict`` / ``metrics`` / ``stats`` / ``ping`` messages
    until ``stop`` (draining queued requests) or parent death."""
    for pc in inherited:
        pc.close()
    from repro.serve.server import ModelServer

    send_lock = threading.Lock()

    def send(msg) -> None:
        try:
            with send_lock:
                conn.send(msg)
        except (BrokenPipeError, OSError):  # parent went away
            pass

    try:
        server = ModelServer.from_checkpoint(
            spec.checkpoint, batch_size=spec.batch_size,
            replicas=spec.replicas, output=spec.output,
            num_threads=spec.num_threads, max_latency=spec.max_latency,
            max_queue=spec.max_queue, cache=spec.cache,
            precision=spec.precision, calibration=spec.calibration,
        )
    except BaseException as exc:
        send(("boot_error", type(exc).__name__, str(exc)))
        conn.close()
        return
    send(("ready", server.item_shape, server.batch_size))

    # batch completion happens on the server's replica threads; a
    # dedicated completer thread waits on the handles in FIFO order and
    # ships results back, so the recv loop never blocks on inference
    pending: "queue.Queue" = queue.Queue()

    def completer() -> None:
        while True:
            job = pending.get()
            if job is None:
                return
            seq, handle = job
            try:
                out = handle.wait(spec.predict_timeout)
                send(("result", seq, out))
            except BaseException as exc:
                send(("error", seq, type(exc).__name__, str(exc)))

    ct = threading.Thread(target=completer, daemon=True,
                          name="serve-completer")
    ct.start()
    try:
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "predict":
                _, seq, rid, item = msg
                try:
                    handle = server.submit(item, request_id=rid)
                    pending.put((seq, handle))
                except BaseException as exc:
                    send(("error", seq, type(exc).__name__, str(exc)))
            elif kind == "ping":
                send(("pong",))
            elif kind == "metrics":
                send(("metrics", msg[1], server.metrics_text()))
            elif kind == "stats":
                send(("stats", msg[1], server.stats()))
            elif kind == "stop":
                break
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        server.close()  # drains the batcher; completer flushes results
        pending.put(None)
        ct.join(timeout=spec.predict_timeout)
        conn.close()


class _Worker:
    """Parent-side record of one worker process."""

    def __init__(self, index: int, proc, conn):
        self.index = index
        self.proc = proc
        self.conn = conn
        self.send_lock = threading.Lock()
        self.lock = threading.Lock()
        self.pending: Dict[int, Request] = {}
        self.ready = threading.Event()
        self.item_shape: Optional[Tuple[int, ...]] = None
        self.batch_size: Optional[int] = None
        self.boot_error: Optional[str] = None
        self.last_pong = time.monotonic()
        self.dead = False
        self.reader: Optional[threading.Thread] = None

    def inflight(self) -> int:
        with self.lock:
            return len(self.pending)

    def alive(self) -> bool:
        return (not self.dead and self.ready.is_set()
                and self.proc.is_alive())


class ProcessServerPool:
    """Serve one checkpoint from N forked ModelServer processes.

    Duck-type compatible with :class:`~repro.serve.server.ModelServer`
    where the HTTP front end is concerned (``submit`` / ``predict`` /
    ``stats`` / ``metrics_text``), so
    :func:`~repro.serve.server.make_http_server` wraps either.

    Parameters mirror ``ModelServer.from_checkpoint`` — ``workers``
    processes each compile ``replicas`` replica(s) at ``batch_size``
    through ``cache`` (pass a directory or ``True`` so the first
    worker's compile warms every later boot). ``max_queue`` bounds the
    *per-worker* in-flight count at the parent (shedding is synchronous
    at submit, so overload surfaces as 429, not as a worker-side
    error). ``heartbeat`` seconds paces liveness pings; a worker silent
    for ``8 * heartbeat`` while work is pending is declared hung and
    killed (then restarted when ``restart=True``).
    """

    def __init__(self, checkpoint: str, *, workers: int = 2,
                 batch_size: int = 8, replicas: int = 1,
                 output: Optional[str] = None,
                 max_latency: float = 0.005, max_queue: int = 64,
                 num_threads: Optional[int] = None, cache=None,
                 registry=None, logger=None, restart: bool = True,
                 heartbeat: float = 0.5, boot_timeout: float = 300.0,
                 predict_timeout: float = 30.0, precision=None,
                 calibration=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._ctx = _fork_context()
        self.checkpoint = checkpoint
        self.spec = _WorkerSpec(
            checkpoint=checkpoint, batch_size=int(batch_size),
            replicas=int(replicas), output=output,
            max_latency=float(max_latency), max_queue=int(max_queue),
            num_threads=num_threads, cache=cache,
            predict_timeout=float(predict_timeout),
            precision=precision, calibration=calibration,
        )
        self.n_workers = int(workers)
        self.max_queue = int(max_queue)
        self.restart = bool(restart)
        self.heartbeat = float(heartbeat)
        self.boot_timeout = float(boot_timeout)
        self.logger = logger if logger is not None else get_logger()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._init_metrics()
        self._seq = itertools.count(1)
        self._rr = itertools.count()
        self._rpc_token = itertools.count(1)
        self._rpc_lock = threading.Lock()
        self._rpc_slots: Dict[int, list] = {}
        self._closed = False
        self.workers: List[_Worker] = [None] * self.n_workers
        for k in range(self.n_workers):
            self._spawn(k)
        deadline = time.monotonic() + self.boot_timeout
        for w in self.workers:
            w.ready.wait(max(0.0, deadline - time.monotonic()))
            if w.boot_error is not None:
                self.close()
                raise RuntimeError(
                    f"worker {w.index} failed to boot: {w.boot_error}"
                )
            if not w.ready.is_set():
                self.close()
                raise TimeoutError(
                    f"worker {w.index} did not boot within "
                    f"{self.boot_timeout:.0f}s"
                )
        self.item_shape = self.workers[0].item_shape
        self.batch_size = self.workers[0].batch_size
        self._hb = threading.Thread(target=self._heartbeat_loop,
                                    daemon=True, name="serve-heartbeat")
        self._hb.start()

    # -- metrics ------------------------------------------------------------

    def _init_metrics(self) -> None:
        r = self.registry
        self._m_requests = r.counter(
            "serve_pool_requests_total",
            "Pool-level prediction requests by outcome "
            "(served|shed|error)",
            labels=("outcome",),
        )
        for outcome in ("served", "shed", "error"):
            self._m_requests.inc(0, outcome=outcome)
        self._m_latency = r.histogram(
            "serve_pool_request_latency_seconds",
            "End-to-end request latency through the pool, submit to "
            "completion",
        )
        self._m_dispatch = r.counter(
            "serve_pool_dispatch_total",
            "Requests dispatched, per worker process",
            labels=("worker",),
        )
        self._m_restarts = r.counter(
            "serve_worker_restarts_total",
            "Worker-process deaths detected (dead or hung); each is "
            "replaced by a fresh fork when restart is enabled",
            labels=("worker",),
        )
        # pre-touch so a scrape before any failure shows explicit zeros
        for k in range(getattr(self, "n_workers", 0) or 0):
            self._m_restarts.inc(0, worker=str(k))
        r.gauge("serve_pool_workers", "Configured worker processes").set(
            getattr(self, "n_workers", 0) or 0)
        r.gauge("serve_pool_workers_alive",
                "Worker processes currently serving",
                fn=lambda: sum(1 for w in self.workers
                               if w is not None and w.alive()))

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(self, index: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        inherited = [w.conn for w in self.workers
                     if w is not None and not w.dead]
        proc = self._ctx.Process(
            target=_serve_worker_main,
            args=(self.spec, child_conn, inherited),
            name=f"repro-serve-{index}", daemon=True,
        )
        proc.start()
        child_conn.close()
        w = _Worker(index, proc, parent_conn)
        self.workers[index] = w
        w.reader = threading.Thread(
            target=self._reader_loop, args=(w,), daemon=True,
            name=f"serve-reader-{index}",
        )
        w.reader.start()

    def _reader_loop(self, w: _Worker) -> None:
        # runs until the channel is exhausted (EOF / closed / dead with
        # nothing buffered) — NOT until self._closed, so a graceful
        # shutdown still delivers the results the worker drains out
        while True:
            try:
                if not w.conn.poll(0.1):
                    if not w.proc.is_alive():
                        break
                    continue
                msg = w.conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "result":
                _, seq, out = msg
                with w.lock:
                    req = w.pending.pop(seq, None)
                if req is not None:
                    req.complete(out)
                    self._m_requests.inc(outcome="served")
                    self._m_latency.observe(req.latency)
            elif kind == "error":
                _, seq, etype, emsg = msg
                with w.lock:
                    req = w.pending.pop(seq, None)
                if req is not None:
                    req.fail(WorkerError(w.index, etype, emsg))
                    self._m_requests.inc(outcome="error")
                    log_event(self.logger, "worker_request_error",
                              worker=w.index, request_id=req.request_id,
                              error_type=etype, error=emsg)
            elif kind == "pong":
                w.last_pong = time.monotonic()
            elif kind == "ready":
                _, w.item_shape, w.batch_size = msg
                w.item_shape = tuple(w.item_shape)
                w.last_pong = time.monotonic()
                w.ready.set()
            elif kind == "boot_error":
                w.boot_error = f"{msg[1]}: {msg[2]}"
                w.ready.set()
                break
            elif kind in ("metrics", "stats"):
                _, token, payload = msg
                with self._rpc_lock:
                    slot = self._rpc_slots.get(token)
                if slot is not None:
                    slot[1] = payload
                    slot[0].set()
        if not self._closed and w.boot_error is None:
            self._on_worker_death(w)

    def _on_worker_death(self, w: _Worker) -> None:
        """Reader-thread path when a worker's channel breaks: fail its
        pending requests with a structured error, count the restart,
        and fork a replacement."""
        w.dead = True
        exitcode = w.proc.exitcode
        with w.lock:
            pending = list(w.pending.values())
            w.pending.clear()
        exc = WorkerDiedError(w.index, exitcode, "serving")
        for req in pending:
            req.fail(exc)
        self._m_requests.inc(len(pending), outcome="error")
        self._m_restarts.inc(worker=str(w.index))
        log_event(self.logger, "worker_died", worker=w.index,
                  exitcode=exitcode, failed_requests=len(pending),
                  restarting=self.restart and not self._closed)
        try:
            w.conn.close()
        except OSError:
            pass
        if self._closed or not self.restart:
            return
        self._spawn(w.index)
        nw = self.workers[w.index]
        nw.ready.wait(self.boot_timeout)
        if nw.boot_error is not None or not nw.ready.is_set():
            log_event(self.logger, "worker_restart_failed",
                      worker=w.index, error=nw.boot_error or "boot timeout")

    def _heartbeat_loop(self) -> None:
        while not self._closed:
            time.sleep(self.heartbeat)
            now = time.monotonic()
            for w in list(self.workers):
                if w is None or w.dead or not w.ready.is_set():
                    continue
                try:
                    with w.send_lock:
                        w.conn.send(("ping",))
                except (BrokenPipeError, OSError):
                    continue  # the reader will notice the dead channel
                # a worker that stays silent with work outstanding is
                # hung (not merely idle): kill it so the reader's death
                # path fails the pending requests and restarts it
                if (w.inflight() > 0
                        and now - w.last_pong > 8 * self.heartbeat
                        and w.proc.is_alive()):
                    log_event(self.logger, "worker_hung", worker=w.index,
                              silent_s=round(now - w.last_pong, 3))
                    w.proc.terminate()

    # -- client API ---------------------------------------------------------

    def _pick_worker(self) -> _Worker:
        live = [w for w in self.workers if w is not None and w.alive()]
        if not live:
            raise BatcherClosedError(
                "no live worker processes" if not self._closed
                else "pool is shut down"
            )
        start = next(self._rr) % len(live)
        rotated = live[start:] + live[:start]
        return min(rotated, key=lambda w: w.inflight())

    def submit(self, item: np.ndarray,
               request_id: Optional[str] = None) -> Request:
        """Enqueue one item on the least-loaded worker; returns a
        waitable :class:`~repro.serve.batcher.Request` exactly like the
        thread server's. Sheds with
        :class:`~repro.serve.batcher.QueueFullError` when the chosen
        worker is at its in-flight bound."""
        if self._closed:
            raise BatcherClosedError("pool is shut down")
        item = np.asarray(item, dtype=np.float32)
        if self.item_shape is not None and item.shape != self.item_shape:
            raise ValueError(
                f"item shape {item.shape} != expected {self.item_shape}"
            )
        rid = request_id or new_request_id()
        w = self._pick_worker()
        depth = w.inflight()
        if depth >= self.max_queue:
            self._m_requests.inc(outcome="shed")
            log_event(self.logger, "shed", request_id=rid,
                      worker=w.index, reason="queue_full",
                      queue_depth=depth)
            raise QueueFullError(
                f"worker {w.index} at capacity ({depth} in flight)",
                depth=depth,
            )
        seq = next(self._seq)
        req = Request(item, time.monotonic(), request_id=rid)
        with w.lock:
            w.pending[seq] = req
        try:
            with w.send_lock:
                w.conn.send(("predict", seq, rid, item))
        except (BrokenPipeError, OSError) as exc:
            with w.lock:
                w.pending.pop(seq, None)
            raise WorkerDiedError(w.index, w.proc.exitcode,
                                  "dispatching a request") from exc
        self._m_dispatch.inc(worker=str(w.index))
        return req

    def predict(self, item: np.ndarray,
                timeout: Optional[float] = 30.0,
                request_id: Optional[str] = None) -> np.ndarray:
        """Blocking single-item convenience: submit + wait."""
        return self.submit(item, request_id=request_id).wait(timeout)

    # -- introspection ------------------------------------------------------

    def _rpc(self, w: _Worker, kind: str, timeout: float = 5.0):
        """Request/reply over a worker pipe, correlated by token (the
        reader thread delivers the payload). None on timeout/death."""
        token = next(self._rpc_token)
        slot = [threading.Event(), None]
        with self._rpc_lock:
            self._rpc_slots[token] = slot
        try:
            try:
                with w.send_lock:
                    w.conn.send((kind, token))
            except (BrokenPipeError, OSError):
                return None
            if not slot[0].wait(timeout):
                return None
            return slot[1]
        finally:
            with self._rpc_lock:
                self._rpc_slots.pop(token, None)

    def metrics_text(self) -> str:
        """One Prometheus page for the whole pool: the parent registry's
        samples verbatim plus every live worker's page with a
        ``worker="k"`` label on each sample."""
        pages = []
        for w in self.workers:
            if w is None or not w.alive():
                continue
            page = self._rpc(w, "metrics")
            if page is not None:
                pages.append((w.index, page))
        return merge_metrics_pages(self.registry.render(), pages)

    def stats(self) -> Dict[str, object]:
        """Pool-level counters plus each live worker's
        :meth:`ModelServer.stats` under ``per_worker``."""
        per_worker = []
        for w in self.workers:
            if w is None or not w.alive():
                continue
            s = self._rpc(w, "stats")
            if s is not None:
                s["worker"] = w.index
                per_worker.append(s)
        lat = self._m_latency
        out: Dict[str, object] = {
            "workers": self.n_workers,
            "alive": sum(1 for w in self.workers
                         if w is not None and w.alive()),
            "batch_size": self.batch_size,
            "served": int(self._m_requests.value(outcome="served")),
            "shed": int(self._m_requests.value(outcome="shed")),
            "errors": int(self._m_requests.value(outcome="error")),
            "restarts": int(self._m_restarts.total()),
            "in_flight": sum(w.inflight() for w in self.workers
                             if w is not None and not w.dead),
            "per_worker": per_worker,
        }
        if lat.count():
            out["latency_ms"] = {
                "p50": round(1e3 * lat.quantile(0.50), 3),
                "p95": round(1e3 * lat.quantile(0.95), 3),
                "p99": round(1e3 * lat.quantile(0.99), 3),
                "mean": round(1e3 * lat.mean(), 3),
            }
        return out

    # -- lifecycle ----------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Stop every worker (draining queued work), join the
        processes, and fail anything still pending. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for w in self.workers:
            if w is None or w.dead:
                continue
            try:
                with w.send_lock:
                    w.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for w in self.workers:
            if w is None:
                continue
            w.proc.join(timeout)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout)
            # let the reader finish delivering whatever the worker
            # drained out before failing the true stragglers
            if w.reader is not None and w.reader is not threading.current_thread():
                w.reader.join(timeout)
            with w.lock:
                pending = list(w.pending.values())
                w.pending.clear()
            for req in pending:
                req.fail(BatcherClosedError("pool is shut down"))
            try:
                w.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ProcessServerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "ProcessPoolUnavailable",
    "ProcessServerPool",
    "WorkerDiedError",
    "WorkerError",
]
