"""Dynamic micro-batching: group single-item requests into batches.

The compiled network executes at a fixed batch size, so the server
amortizes per-call overhead by grouping concurrent requests. A batch is
flushed to a worker when either trigger fires:

* **size** — ``max_batch_size`` requests are waiting, or
* **latency** — the *oldest* waiting request has been queued for
  ``max_latency`` seconds (trickle traffic still gets bounded queueing
  delay, at the cost of a ragged batch the worker zero-pads).

Admission is bounded: past ``max_queue`` waiting requests,
:meth:`DynamicBatcher.submit` raises :class:`QueueFullError` so callers
can shed load (the HTTP front end answers 429 with the queue depth and
request ID) instead of growing an unbounded backlog. Shutdown is draining: new submissions are refused,
but queued requests are still handed to workers; :meth:`next_batch`
returns ``None`` only once the queue is empty.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np


class QueueFullError(RuntimeError):
    """Raised by :meth:`DynamicBatcher.submit` when admission control
    rejects a request (queue at capacity — shed load upstream).

    Carries the shed context the HTTP front end surfaces in its 429
    body: :attr:`depth` (waiting requests at rejection time) and
    :attr:`reason` (currently always ``'queue_full'``).
    """

    def __init__(self, message: str = "queue at capacity",
                 depth: int = 0, reason: str = "queue_full"):
        super().__init__(message)
        self.depth = int(depth)
        self.reason = reason


class BatcherClosedError(RuntimeError):
    """Raised by :meth:`DynamicBatcher.submit` after shutdown."""


@dataclass
class Request:
    """One in-flight prediction request (a single item, no batch axis)."""

    item: np.ndarray
    enqueued_at: float
    #: propagated trace identity: client-supplied or server-generated,
    #: carried through batching into worker spans, logs, and responses
    request_id: str = ""
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[np.ndarray] = None
    error: Optional[BaseException] = None
    #: set by the worker: wall-clock seconds from submit to completion
    latency: float = 0.0

    def wait(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the worker completes this request; returns the
        output row or re-raises the worker-side error."""
        if not self.done.wait(timeout):
            raise TimeoutError("request not completed within timeout")
        if self.error is not None:
            raise self.error
        return self.result

    def complete(self, result: np.ndarray,
                 latency: Optional[float] = None) -> None:
        """Fulfil this request (worker side): store the output row,
        stamp the latency (measured from admission unless the worker
        supplies its own), and wake the waiter."""
        self.result = result
        self.latency = (latency if latency is not None
                        else time.monotonic() - self.enqueued_at)
        self.done.set()

    def fail(self, exc: BaseException) -> None:
        """Fail this request: :meth:`wait` re-raises ``exc``."""
        self.error = exc
        self.done.set()


class DynamicBatcher:
    """A bounded request queue with size- and latency-triggered flushes.

    Thread-safe on both sides: any number of submitter threads and any
    number of worker threads (one per model replica) may run
    concurrently. Workers loop on :meth:`next_batch`, which blocks until
    a flush trigger fires and never returns an empty list.
    """

    def __init__(self, max_batch_size: int, max_latency: float = 0.005,
                 max_queue: int = 64):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_latency = float(max_latency)
        self.max_queue = max_queue
        self._queue: Deque[Request] = deque()
        self._cond = threading.Condition()
        self._closed = False

    # -- submitter side -----------------------------------------------------

    def submit(self, item: np.ndarray, request_id: str = "") -> Request:
        """Enqueue one item; returns its :class:`Request` handle.

        Raises :class:`QueueFullError` at capacity (the error carries
        the queue depth for the shed response) and
        :class:`BatcherClosedError` after :meth:`shutdown`.
        """
        req = Request(item, time.monotonic(), request_id=request_id)
        with self._cond:
            if self._closed:
                raise BatcherClosedError("batcher is shut down")
            if len(self._queue) >= self.max_queue:
                raise QueueFullError(
                    f"queue at capacity ({self.max_queue} waiting)",
                    depth=len(self._queue),
                )
            self._queue.append(req)
            self._cond.notify_all()
        return req

    def depth(self) -> int:
        """Number of requests currently waiting (not yet batched)."""
        with self._cond:
            return len(self._queue)

    # -- worker side --------------------------------------------------------

    def next_batch(self) -> Optional[List[Request]]:
        """Block until a batch is ready; ``None`` ends the worker loop.

        Returns between 1 and ``max_batch_size`` requests. Flushes when
        the queue reaches ``max_batch_size``, when the oldest waiting
        request has aged ``max_latency`` seconds, or immediately (with
        whatever is queued) once the batcher is shut down. Returns
        ``None`` only when shut down *and* drained.
        """
        with self._cond:
            while True:
                while not self._queue:
                    if self._closed:
                        return None
                    self._cond.wait()
                deadline = self._queue[0].enqueued_at + self.max_latency
                while (self._queue
                       and len(self._queue) < self.max_batch_size
                       and not self._closed):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                if not self._queue:
                    continue  # another worker drained it; start over
                n = min(self.max_batch_size, len(self._queue))
                return [self._queue.popleft() for _ in range(n)]

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Refuse new submissions; wake all waiters. Queued requests are
        still served (drained) before workers see ``None``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed
