"""Tracer protocol and implementations.

The evaluation section of the paper is entirely about *where time goes*
— fusion wins (Fig. 13), GEMM wins, comm/compute overlap (Figs. 17-19) —
so the runtime carries an attribution layer: every executable step, every
compiler pass, and every simulator segment can emit a :class:`Span` onto
one shared timeline.

Design constraints:

* **zero overhead when disabled** — the default :class:`NullTracer` is a
  sentinel the executor checks once per ``forward()``/``backward()``
  call; the untraced hot loop is byte-for-byte the original one;
* **one timeline, many clocks** — runtime spans are measured with
  ``time.perf_counter`` relative to the tracer's first event, while the
  discrete-event simulators (:mod:`repro.runtime.distributed`,
  :mod:`repro.runtime.accelerator`) inject spans with explicit *virtual*
  timestamps via :meth:`Tracer.add_span`; categories keep the tracks
  apart in the Chrome viewer.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class Span:
    """One timed interval on the trace timeline."""

    name: str
    #: track: 'forward' | 'backward' | 'comm' | 'compile' | 'train' |
    #: 'sim.compute' | 'sim.comm' | 'sim.transfer' | ...
    cat: str
    start: float  # seconds, timeline-relative (wall or virtual)
    dur: float
    #: recurrent time step the span executed at (0 for feed-forward nets)
    t: int = 0
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.dur


@dataclass
class Metric:
    """A named scalar sample (per-epoch loss, accuracy, ...)."""

    name: str
    value: float
    tags: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """No-op base tracer; also the protocol instrumented code targets.

    Instrumentation sites call :meth:`begin`/:meth:`end` (or the
    :meth:`span` context manager) around timed work, :meth:`add_span` for
    pre-measured/virtual intervals, and :meth:`metric` for scalars. All
    are no-ops here, and ``enabled`` is False so hot paths can skip
    instrumentation entirely.
    """

    enabled: bool = False

    def begin(self, name: str, cat: str, t: int = 0, **args):
        return None

    def end(self, token) -> None:
        pass

    @contextmanager
    def span(self, name: str, cat: str, t: int = 0, **args):
        token = self.begin(name, cat, t, **args)
        try:
            yield
        finally:
            self.end(token)

    def add_span(self, name: str, cat: str, start: float, dur: float,
                 t: int = 0, **args) -> None:
        pass

    def now(self) -> float:
        """Current timeline-relative timestamp (for callers measuring
        intervals themselves and reporting via :meth:`add_span` — e.g.
        the executor's per-shard spans)."""
        return 0.0

    def metric(self, name: str, value: float, **tags) -> None:
        pass


class NullTracer(Tracer):
    """The default tracer: records nothing, costs nothing."""


#: shared default instance attached to untraced networks
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Records spans and metrics for profiling and Chrome-trace export.

    Timestamps are normalized so the first recorded event starts at 0;
    this keeps wall-clock spans and export output small and stable.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self.spans: List[Span] = []
        self.metrics: List[Metric] = []
        self._clock = clock
        self._origin: Optional[float] = None

    def _now(self) -> float:
        now = self._clock()
        if self._origin is None:
            self._origin = now
        return now - self._origin

    # -- recording ----------------------------------------------------------

    def begin(self, name: str, cat: str, t: int = 0, **args) -> Tuple:
        return (name, cat, t, args, self._now())

    def end(self, token) -> None:
        name, cat, t, args, start = token
        self.spans.append(Span(name, cat, start, self._now() - start, t, args))

    def add_span(self, name: str, cat: str, start: float, dur: float,
                 t: int = 0, **args) -> None:
        self.spans.append(Span(name, cat, start, dur, t, args))

    def now(self) -> float:
        """Timeline-relative timestamp. Thread-safe once the origin is
        established (the executor pins it from the main thread before
        dispatching shards); only :meth:`add_span` from the owning thread
        may record the measured intervals."""
        return self._now()

    def metric(self, name: str, value: float, **tags) -> None:
        self.metrics.append(Metric(name, float(value), tags))

    def clear(self) -> None:
        self.spans.clear()
        self.metrics.clear()
        self._origin = None

    # -- queries ------------------------------------------------------------

    def spans_by_cat(self, cat: str) -> List[Span]:
        return [s for s in self.spans if s.cat == cat]

    def metric_series(self, name: str, **tags) -> List[float]:
        """Values of every metric named ``name`` whose tags match all of
        ``tags`` (e.g. ``metric_series('serve.latency_ms', replica=0)``
        isolates one replica's series instead of interleaving all of
        them). No tags selects the whole series, as before."""
        return [
            m.value for m in self.metrics
            if m.name == name
            and all(m.tags.get(k) == v for k, v in tags.items())
        ]

    def profile(self, phases: Optional[Tuple[str, ...]] = None):
        """Aggregate recorded spans into a :class:`~repro.trace.report.
        ProfileReport` (defaults to the runtime phases)."""
        from repro.trace.report import ProfileReport

        return ProfileReport.from_spans(self.spans, phases)

    def export_chrome_trace(self, path: str) -> str:
        """Write a ``chrome://tracing`` / Perfetto compatible JSON file."""
        from repro.trace.chrome import export_chrome_trace

        return export_chrome_trace(self.spans, path)
