"""Tracing, metrics, and compiler-pass instrumentation.

Zero-overhead-when-disabled observability for the whole stack: attach a
:class:`RecordingTracer` via ``compile_net(..., tracer=...)`` (or
``net.init`` → ``CompiledNet.tracer``) and every runtime step, training
epoch, compiler pass, and simulator segment lands on one timeline —
aggregate it with :meth:`RecordingTracer.profile` or open it in
``chrome://tracing`` via :meth:`RecordingTracer.export_chrome_trace`.
"""

from repro.trace.chrome import export_chrome_trace, to_trace_events
from repro.trace.compile_report import CompileReport, PassRecord
from repro.trace.report import MemoryReport, ProfileReport, ProfileRow
from repro.trace.tracer import (
    Metric,
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    Span,
    Tracer,
)

__all__ = [
    "CompileReport",
    "MemoryReport",
    "Metric",
    "NULL_TRACER",
    "NullTracer",
    "PassRecord",
    "ProfileReport",
    "ProfileRow",
    "RecordingTracer",
    "Span",
    "Tracer",
    "export_chrome_trace",
    "to_trace_events",
]
