"""Runtime profile aggregation and the paper-style printed table.

Turns the flat span stream of a :class:`~repro.trace.tracer.
RecordingTracer` into per-step and per-ensemble attributions: for each
(phase, step label) the number of executions, total/mean wall time, share
of the phase, bytes touched and GEMM FLOPs — the data behind the paper's
"where does the iteration go" breakdowns (Figs. 13-15).

Fused groups carry labels like ``conv1.compute+relu1.compute+pool1.copy``;
the per-ensemble rollup credits such a group's time to each member
ensemble in equal parts (noted in the table), since the runtime cannot
observe intra-group boundaries — that is precisely what fusion removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.trace.tracer import Span

#: span categories considered runtime execution phases by default
RUNTIME_PHASES = ("forward", "backward", "comm")


@dataclass
class ProfileRow:
    """Aggregate of all executions of one step within one phase."""

    phase: str
    name: str
    count: int = 0
    total: float = 0.0
    bytes: int = 0
    flops: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def add(self, span: Span) -> None:
        self.count += 1
        self.total += span.dur
        self.bytes += int(span.args.get("bytes", 0) or 0)
        self.flops += int(span.args.get("flops", 0) or 0)


@dataclass
class ProfileReport:
    """Per-step aggregation of a recorded trace."""

    rows: List[ProfileRow] = field(default_factory=list)
    phase_totals: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_spans(cls, spans: Iterable[Span],
                   phases: Optional[Sequence[str]] = None) -> "ProfileReport":
        phases = tuple(phases) if phases is not None else RUNTIME_PHASES
        keyed: Dict[Tuple[str, str], ProfileRow] = {}
        for span in spans:
            if span.cat not in phases:
                continue
            row = keyed.get((span.cat, span.name))
            if row is None:
                row = keyed[(span.cat, span.name)] = ProfileRow(
                    span.cat, span.name
                )
            row.add(span)
        rows = sorted(keyed.values(), key=lambda r: -r.total)
        totals: Dict[str, float] = {}
        for row in rows:
            totals[row.phase] = totals.get(row.phase, 0.0) + row.total
        return cls(rows, totals)

    @property
    def total(self) -> float:
        """Wall time attributed to named steps across all phases."""
        return sum(self.phase_totals.values())

    def phase_rows(self, phase: str) -> List[ProfileRow]:
        return [r for r in self.rows if r.phase == phase]

    def by_ensemble(self) -> Dict[str, float]:
        """Total seconds credited per ensemble.

        A fused group's time is split equally across its distinct member
        ensembles (see module docstring).
        """
        out: Dict[str, float] = {}
        for row in self.rows:
            members = sorted({part.split(".", 1)[0]
                              for part in row.name.split("+")})
            share = row.total / len(members)
            for m in members:
                out[m] = out.get(m, 0.0) + share
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    # -- rendering -----------------------------------------------------------

    def table(self, max_rows: Optional[int] = None) -> str:
        """The paper-style printed breakdown."""
        lines: List[str] = []
        name_w = max([len(r.name) for r in self.rows] + [4])
        name_w = min(name_w, 56)
        header = (
            f"{'phase':9s} {'step':{name_w}s} {'count':>5s} "
            f"{'total(s)':>9s} {'mean(ms)':>9s} {'%phase':>6s} "
            f"{'MB':>8s} {'GFLOP':>7s}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        for r in shown:
            phase_total = self.phase_totals.get(r.phase, 0.0) or 1e-12
            lines.append(
                f"{r.phase:9s} {r.name[:name_w]:{name_w}s} {r.count:5d} "
                f"{r.total:9.4f} {r.mean * 1e3:9.3f} "
                f"{100 * r.total / phase_total:5.1f}% "
                f"{r.bytes / 1e6:8.1f} {r.flops / 1e9:7.2f}"
            )
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        for phase, total in self.phase_totals.items():
            lines.append(f"{phase:9s} total {total:.4f}s")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.table()


@dataclass
class MemoryReport:
    """Printed view of a compiled net's buffer-memory footprint: the
    arena planner's slab layout and peak-bytes accounting (naive =
    every non-parameter buffer individually allocated, planned = after
    interval-based reuse)."""

    naive_bytes: int
    planned_bytes: int
    arena_bytes: int
    #: (offset_bytes, size_bytes, member buffer names) per shared slab
    slabs: List[Tuple[int, int, List[str]]] = field(default_factory=list)
    #: buffer -> reason it was excluded from pooling
    kept_reasons: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_compiled(cls, cnet) -> "MemoryReport":
        stats = cnet.memory_stats()
        mem = cnet.plan.memory
        slabs = []
        kept: Dict[str, str] = {}
        if mem is not None:
            slabs = [(s.offset, s.nbytes, list(s.members))
                     for s in mem.slabs]
            kept = dict(mem.kept_reasons)
        return cls(stats["naive_bytes"], stats["planned_bytes"],
                   stats["arena_bytes"], slabs, kept)

    @property
    def saved_bytes(self) -> int:
        return self.naive_bytes - self.planned_bytes

    @property
    def reuse_fraction(self) -> float:
        return self.saved_bytes / self.naive_bytes if self.naive_bytes else 0.0

    def table(self, max_members: int = 4) -> str:
        lines = [
            f"peak buffer bytes: {self.planned_bytes / 1e6:.2f} MB planned"
            f" vs {self.naive_bytes / 1e6:.2f} MB naive"
            f" ({100 * self.reuse_fraction:.1f}% reuse)",
        ]
        if not self.slabs:
            lines.append("no arena (memory planner off or nothing pooled)")
            return "\n".join(lines)
        lines.append(
            f"arena: {self.arena_bytes / 1e6:.2f} MB in "
            f"{len(self.slabs)} slabs"
        )
        header = f"{'offset':>10s} {'KB':>9s}  members"
        lines.append(header)
        lines.append("-" * len(header))
        for off, size, members in self.slabs:
            shown = ", ".join(members[:max_members])
            if len(members) > max_members:
                shown += f", … (+{len(members) - max_members})"
            lines.append(f"{off:10d} {size / 1024:9.1f}  {shown}")
        if self.kept_reasons:
            counts: Dict[str, int] = {}
            for reason in self.kept_reasons.values():
                counts[reason] = counts.get(reason, 0) + 1
            kept = ", ".join(f"{r}: {n}" for r, n in sorted(counts.items()))
            lines.append(f"kept out of pool — {kept}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.table()
