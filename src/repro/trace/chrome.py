"""Chrome trace-event JSON export.

Writes the recorded spans in the Trace Event Format accepted by
``chrome://tracing`` and Perfetto: one complete ('X') event per span,
timestamps in microseconds, one virtual thread per span category so
forward/backward/comm/compile/simulator tracks render as separate rows.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.trace.tracer import Span

#: stable thread ordering for the known categories; unknown categories
#: are appended in first-seen order after these
_CAT_ORDER = (
    "forward",
    "backward",
    "comm",
    "train",
    "compile",
    "sim.compute",
    "sim.comm",
    "sim.transfer",
)


def to_trace_events(spans: Iterable[Span]) -> List[dict]:
    """Convert spans to a Trace Event Format event list.

    Spans carrying a ``shard`` arg (thread-parallel execution) get one
    virtual thread per (category, shard) — e.g. ``forward.s0`` /
    ``forward.s1`` — so shard overlap is visible as parallel rows.
    """
    tids: Dict[str, int] = {}

    def tid(track: str) -> int:
        if track not in tids:
            tids[track] = (
                _CAT_ORDER.index(track)
                if track in _CAT_ORDER
                else len(_CAT_ORDER) + len(tids)
            )
        return tids[track]

    events: List[dict] = []
    for span in spans:
        args = {k: v for k, v in span.args.items()}
        args["t"] = span.t
        shard = span.args.get("shard")
        track = span.cat if shard is None else f"{span.cat}.s{shard}"
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.dur * 1e6,
                "pid": 0,
                "tid": tid(track),
                "args": args,
            }
        )
    # thread-name metadata so the viewer labels each track by category
    for cat, t in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": t,
                "args": {"name": cat},
            }
        )
    return events


def export_chrome_trace(spans: Iterable[Span], path: str) -> str:
    """Write spans to ``path`` as Chrome trace JSON; returns the path."""
    payload = {
        "traceEvents": to_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as f:
        json.dump(payload, f)
    return path
