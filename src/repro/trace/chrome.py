"""Chrome trace-event JSON export.

Writes the recorded spans in the Trace Event Format accepted by
``chrome://tracing`` and Perfetto: one complete ('X') event per span,
timestamps in microseconds, one virtual thread per span category so
forward/backward/comm/compile/simulator tracks render as separate rows.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from repro.trace.tracer import Span

#: stable thread ordering for the known categories; unknown categories
#: are appended in first-seen order after these
_CAT_ORDER = (
    "forward",
    "backward",
    "comm",
    "train",
    "compile",
    "sim.compute",
    "sim.comm",
    "sim.transfer",
)


def to_trace_events(spans: Iterable[Span]) -> List[dict]:
    """Convert spans to a Trace Event Format event list."""
    tids: Dict[str, int] = {}

    def tid(cat: str) -> int:
        if cat not in tids:
            tids[cat] = (
                _CAT_ORDER.index(cat)
                if cat in _CAT_ORDER
                else len(_CAT_ORDER) + len(tids)
            )
        return tids[cat]

    events: List[dict] = []
    for span in spans:
        args = {k: v for k, v in span.args.items()}
        args["t"] = span.t
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.dur * 1e6,
                "pid": 0,
                "tid": tid(span.cat),
                "args": args,
            }
        )
    # thread-name metadata so the viewer labels each track by category
    for cat, t in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": t,
                "args": {"name": cat},
            }
        )
    return events


def export_chrome_trace(spans: Iterable[Span], path: str) -> str:
    """Write spans to ``path`` as Chrome trace JSON; returns the path."""
    payload = {
        "traceEvents": to_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as f:
        json.dump(payload, f)
    return path
