"""Compiler-pass instrumentation records.

``optim.pipeline.compile_net`` wraps each optimization pass and records
what it did: wall time, loop-unit counts before/after, and pass-specific
rewrite counters ("matched 6 GEMMs", "fused 3 tile groups"). The result
is attached to the compiled network as ``CompiledNet.compile_report`` so
the rewrites that produced ``c_source`` are inspectable next to it —
the attribution DeepDSL/LazyTensor argue compiler-based DL stacks need.

Counting helpers here operate on the middle-end's ``Section``/unit lists
and the final schedule; they are read-only and cheap, so the report is
built unconditionally (compilation happens once, execution many times).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir import CommCall, Gemm


@dataclass
class PassRecord:
    """One optimization pass's instrumentation record."""

    name: str
    enabled: bool
    wall_time: float = 0.0
    units_before: int = 0
    units_after: int = 0
    rewrites: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        """Human summary, e.g. ``matched 6 GEMMs``."""
        if not self.enabled:
            return "disabled"
        if not self.rewrites:
            return "no rewrites"
        return ", ".join(
            f"{k.replace('_', ' ')}: {v}" for k, v in self.rewrites.items()
        )


@dataclass
class CompileReport:
    """Ordered pass records for one ``compile_net`` invocation."""

    records: List[PassRecord] = field(default_factory=list)
    total_time: float = 0.0
    #: wall-clock seconds of the whole ``compile_net`` call (passes plus
    #: synthesis and codegen), or of the cache thaw that replaced it —
    #: the number cold-vs-warm boot benchmarks compare
    compile_seconds: float = 0.0
    #: filled by the persistent compilation cache (repro.cache): the
    #: entry's content-hash key, whether this program was thawed from it
    #: (every pass skipped), and the entry's creation timestamp
    cache_key: Optional[str] = None
    cache_hit: bool = False
    cache_created: Optional[float] = None

    def add(self, record: PassRecord) -> PassRecord:
        self.records.append(record)
        self.total_time += record.wall_time
        return record

    def __getitem__(self, name: str) -> PassRecord:
        for r in self.records:
            if r.name == name:
                return r
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(r.name == name for r in self.records)

    def rewrite_count(self, pass_name: str, counter: Optional[str] = None) -> int:
        """Total rewrites of one pass (or one named counter of it)."""
        rec = self[pass_name]
        if counter is not None:
            return rec.rewrites.get(counter, 0)
        return sum(rec.rewrites.values())

    def table(self) -> str:
        header = (
            f"{'pass':14s} {'on':>3s} {'ms':>8s} {'units':>11s}  rewrites"
        )
        lines = [header, "-" * len(header)]
        for r in self.records:
            units = f"{r.units_before}->{r.units_after}" if r.enabled else "-"
            lines.append(
                f"{r.name:14s} {'yes' if r.enabled else 'no':>3s} "
                f"{r.wall_time * 1e3:8.2f} {units:>11s}  {r.describe()}"
            )
        total = f"compile total {self.total_time * 1e3:.2f}ms"
        if self.cache_hit:
            total += f" (warm cache hit {self.cache_key[:12]})"
        lines.append(total)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.table()


# ---------------------------------------------------------------------------
# Counting helpers over sections / schedules
# ---------------------------------------------------------------------------


def count_units(sections) -> int:
    return sum(len(sec.units) for sec in sections)


def count_gemms(sections) -> int:
    return sum(
        1 for sec in sections for u in sec.units if isinstance(u.stmt, Gemm)
    )


def count_kind(sections, kind: str) -> int:
    return sum(
        1 for sec in sections for u in sec.units if u.tags.kind == kind
    )


def count_tiled(sections) -> int:
    return sum(
        1
        for sec in sections
        for u in sec.units
        if u.loops and u.loops[0].role == "tile"
    )


def count_inlined(plan) -> int:
    return sum(1 for c in plan.conn_plans.values() if c.mode == "inlined")


def count_schedule(items) -> Dict[str, int]:
    """Schedule-level counters: total steps, fused groups, member units."""
    steps = fused = fused_units = 0
    for item in items:
        if isinstance(item, CommCall):
            continue
        steps += 1
        if len(item.units) > 1:
            fused += 1
            fused_units += len(item.units)
    return {"steps": steps, "fused_groups": fused,
            "fused_units": fused_units}


def count_parallel(items) -> int:
    n = 0
    for item in items:
        if isinstance(item, CommCall):
            continue
        if item.tile_loop is not None and item.tile_loop.parallel:
            n += 1
            continue
        for unit in item.units:
            if unit.loops and unit.loops[0].parallel:
                n += 1
    return n
