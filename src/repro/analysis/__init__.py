"""Compiler analyses: mapping introspection, shared variables, frontend."""

from repro.analysis.frontend import DslError, NeuronFunctionIR, parse_neuron_function
from repro.analysis.mapping import (
    MappingError,
    MappingInfo,
    WindowDim,
    analyze_mapping,
)
from repro.analysis.shared_variables import (
    ConnectionFacts,
    EnsembleFacts,
    analyze_ensemble,
)

__all__ = [
    "ConnectionFacts",
    "DslError",
    "EnsembleFacts",
    "MappingError",
    "MappingInfo",
    "NeuronFunctionIR",
    "WindowDim",
    "analyze_ensemble",
    "analyze_mapping",
    "parse_neuron_function",
]
