"""Mapping-function introspection.

Connections in Latte are described by *mapping functions* from sink neuron
coordinates to per-dimension ranges of source coordinates (§3.3). The
compiler never evaluates the mapping once per neuron; it represents the
data-flow graph with *implicit adjacency lists* (§5.1) by probing the
mapping at a handful of sink indices and fitting an affine window model::

    start_d(sink) = offset_d + sum_i coeff[d][i] * sink_i      (length_d fixed)

The fitted model is verified on additional sample points; if verification
fails the connection falls back to a general gather with materialized
index arrays. The affine model is what powers shared-variable analysis
(§5.2): a sink dimension ``i`` with ``coeff[d][i] == 0`` for every source
dimension ``d`` does not change the input set — neurons along it share
their inputs, and the compiler drops that dimension from the input buffer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

import numpy as np


class MappingError(ValueError):
    """Raised when a mapping function is malformed (wrong arity, ranges
    with non-unit steps, non-uniform window sizes, out-of-domain types)."""


@dataclass(frozen=True)
class WindowDim:
    """Affine model of one source dimension of a window mapping."""

    offset: int
    coeffs: Tuple[int, ...]  # one per sink dimension
    length: int
    #: True when the user mapping returned a bare int for this dimension.
    scalar: bool = False

    def start_at(self, sink_index: Sequence[int]) -> int:
        """Window start coordinate for a concrete sink index."""
        return self.offset + sum(
            c * i for c, i in zip(self.coeffs, sink_index)
        )


@dataclass
class MappingInfo:
    """Result of analyzing one connection's mapping function."""

    kind: str  # 'one_to_one' | 'all_to_all' | 'window' | 'gather'
    source_shape: Tuple[int, ...]
    sink_shape: Tuple[int, ...]
    dims: Tuple[WindowDim, ...] = ()
    #: flat source indices for 'gather': shape (*sink_shape, window_size)
    gather_indices: Optional[np.ndarray] = None

    @property
    def window_shape(self) -> Tuple[int, ...]:
        if self.kind == "gather":
            return (self.gather_indices.shape[-1],)
        return tuple(d.length for d in self.dims)

    @property
    def window_size(self) -> int:
        return int(np.prod(self.window_shape))

    @property
    def shared_sink_dims(self) -> frozenset:
        """Sink dimensions along which all neurons share the same inputs
        (the droppable dimensions of §5.2)."""
        if self.kind == "all_to_all":
            return frozenset(range(len(self.sink_shape)))
        if self.kind != "window" and self.kind != "one_to_one":
            return frozenset()
        shared = set()
        for i in range(len(self.sink_shape)):
            if all(d.coeffs[i] == 0 for d in self.dims):
                shared.add(i)
        return frozenset(shared)

    @property
    def kept_sink_dims(self) -> Tuple[int, ...]:
        """Sink dimensions retained in the shared input buffer, in order."""
        shared = self.shared_sink_dims
        return tuple(i for i in range(len(self.sink_shape)) if i not in shared)

    def dep_distance(self, sink_dim: int) -> int:
        """Input dependence distance along a sink dimension — how many
        source elements one step of the sink consumes. Drives the tile
        scaling of the fusion pass (§5.4.2, Fig. 11)."""
        if self.kind in ("one_to_one", "all_to_all"):
            return 1
        if self.kind == "gather":
            return 1
        return max((abs(d.coeffs[sink_dim]) for d in self.dims), default=1)

    def padding(self) -> Tuple[Tuple[int, int], ...]:
        """Per-source-dimension ``(pad_before, pad_after)`` needed so all
        window accesses land inside the (padded) source."""
        if self.kind != "window":
            return tuple((0, 0) for _ in self.source_shape)
        pads = []
        for d, wd in enumerate(self.dims):
            lo = wd.offset + sum(
                min(c * (s - 1), 0) for c, s in zip(wd.coeffs, self.sink_shape)
            )
            hi = (
                wd.offset
                + sum(max(c * (s - 1), 0) for c, s in zip(wd.coeffs, self.sink_shape))
                + wd.length
            )
            pads.append((max(0, -lo), max(0, hi - self.source_shape[d])))
        return tuple(pads)

    @property
    def needs_padding(self) -> bool:
        return any(b or a for b, a in self.padding())


def _normalize(result, source_shape) -> list:
    """Normalize a mapping result to a list of (start, length, scalar)."""
    if isinstance(result, (int, np.integer)):
        result = (int(result),)
    if not isinstance(result, (tuple, list)):
        raise MappingError(
            f"mapping must return a tuple of ints/ranges, got {type(result).__name__}"
        )
    if len(result) != len(source_shape):
        raise MappingError(
            f"mapping returned {len(result)} dimensions for a source of "
            f"rank {len(source_shape)}"
        )
    out = []
    for r in result:
        if isinstance(r, (int, np.integer)):
            out.append((int(r), 1, True))
        elif isinstance(r, range):
            if r.step != 1:
                raise MappingError("mapping ranges must have unit step")
            out.append((r.start, len(r), False))
        else:
            raise MappingError(
                f"mapping entries must be int or range, got {type(r).__name__}"
            )
    return out


def _probe_points(sink_shape, rng) -> list:
    """Sink indices used for fitting and verification."""
    ndim = len(sink_shape)
    origin = (0,) * ndim
    points = [origin]
    for i in range(ndim):
        if sink_shape[i] > 1:
            points.append(tuple(1 if j == i else 0 for j in range(ndim)))
    corner = tuple(s - 1 for s in sink_shape)
    points.append(corner)
    for _ in range(6):
        points.append(tuple(int(rng.integers(0, s)) for s in sink_shape))
    # a couple of mixed points exercise cross terms
    points.append(tuple(min(1, s - 1) for s in sink_shape))
    return points


def analyze_mapping(
    mapping: Callable,
    source_shape: Sequence[int],
    sink_shape: Sequence[int],
    allow_gather: bool = True,
) -> MappingInfo:
    """Fit and classify a connection's mapping function.

    Returns a :class:`MappingInfo` of kind ``one_to_one`` / ``all_to_all``
    / ``window`` when an affine window model verifies, else (when
    ``allow_gather``) a materialized ``gather``.
    """
    source_shape = tuple(int(d) for d in source_shape)
    sink_shape = tuple(int(d) for d in sink_shape)
    rng = np.random.default_rng(1234)
    ndim_sink = len(sink_shape)

    def evaluate(idx):
        return _normalize(mapping(*idx), source_shape)

    origin = evaluate((0,) * ndim_sink)
    dims = []
    affine = True
    for d in range(len(source_shape)):
        offset, length, scalar = origin[d]
        coeffs = []
        for i in range(ndim_sink):
            if sink_shape[i] > 1:
                e_i = tuple(1 if j == i else 0 for j in range(ndim_sink))
                start_i, length_i, _ = evaluate(e_i)[d]
                if length_i != length:
                    affine = False
                coeffs.append(start_i - offset)
            else:
                coeffs.append(0)
        dims.append(WindowDim(offset, tuple(coeffs), length, scalar))
    # verification
    if affine:
        for pt in _probe_points(sink_shape, rng):
            got = evaluate(pt)
            for d, wd in enumerate(dims):
                start, length, _ = got[d]
                if length != wd.length or start != wd.start_at(pt):
                    affine = False
                    break
            if not affine:
                break

    if affine:
        info = MappingInfo("window", source_shape, sink_shape, dims=tuple(dims))
        # refine classification
        if (
            all(d.length == s and d.offset == 0 for d, s in zip(dims, source_shape))
            and all(all(c == 0 for c in d.coeffs) for d in dims)
        ):
            info.kind = "all_to_all"
        elif (
            len(source_shape) == ndim_sink
            and source_shape == sink_shape
            and all(d.length == 1 and d.offset == 0 for d in dims)
            and all(
                d.coeffs == tuple(1 if i == j else 0 for i in range(ndim_sink))
                for j, d in enumerate(dims)
            )
        ):
            info.kind = "one_to_one"
        return info

    if not allow_gather:
        raise MappingError("mapping is not an affine window and gather is disabled")
    return _materialize_gather(mapping, source_shape, sink_shape, evaluate)


def _materialize_gather(mapping, source_shape, sink_shape, evaluate) -> MappingInfo:
    """Fallback: enumerate every sink neuron's flat source indices."""
    n_sink = int(np.prod(sink_shape))
    if n_sink > 1_000_000:
        raise MappingError(
            "non-affine mapping over more than 1e6 sink neurons; "
            "rewrite the mapping as an affine window"
        )
    window = None
    indices = None
    for flat, idx in enumerate(itertools.product(*(range(s) for s in sink_shape))):
        entries = evaluate(idx)
        coords = [range(start, start + length) for start, length, _ in entries]
        flat_ids = [
            int(np.ravel_multi_index(c, source_shape))
            for c in itertools.product(*coords)
        ]
        if window is None:
            window = len(flat_ids)
            indices = np.empty((n_sink, window), dtype=np.int64)
        elif len(flat_ids) != window:
            raise MappingError(
                "gather mappings must have a uniform window size across "
                "all sink neurons"
            )
        indices[flat] = flat_ids
    indices = indices.reshape(sink_shape + (window,))
    return MappingInfo(
        "gather", source_shape, sink_shape, gather_indices=indices
    )
