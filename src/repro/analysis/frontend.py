"""Neuron-function frontend.

Latte neuron ``forward``/``backward`` bodies are written against a single
abstract neuron (array-of-structs view: ``self.weights[i]``,
``self.inputs[0][i]``). This module parses their *source* with the host
``ast`` module — the Python analogue of the paper capturing Julia ASTs —
and lowers them to the loop IR with **abstract buffer references**:

====================  =======================================
user syntax           abstract IR reference
====================  =======================================
``self.value``        ``Index('$value', ())``
``self.grad``         ``Index('$grad', ())``
``self.inputs[j][i]`` ``Index('$inputs:j', (i,))``
``self.grad_inputs[j][i]``  ``Index('$grad_inputs:j', (i,))``
``self.field[i]``     ``Index('$field:field', (i,))``
``len(self.inputs[j])``  ``Var('$len:j')``
====================  =======================================

Synthesis (:mod:`repro.synthesis.compute`) later rewrites these abstract
references into concrete struct-of-arrays accesses with full neuron
coordinates — completing the AoS→SoA transformation of §5.3 / Fig. 8 —
and substitutes window sizes for the ``$len`` symbols.

Only a restricted subset of Python is accepted; anything else raises
:class:`DslError` with a pointer at the offending construct. Reductions
written as ``x = max(x, e)`` are normalized to ``Assign(x, e,
reduce='max')``.
"""

from __future__ import annotations

import ast
import inspect
import math
import textwrap
from dataclasses import dataclass, field
from typing import List, Optional

from repro.ir import (
    Assign,
    BinOp,
    Call,
    Compare,
    Const,
    Expr,
    For,
    Index,
    Stmt,
    UnaryOp,
    Var,
)
from repro.ir.nodes import INTRINSICS


class DslError(SyntaxError):
    """A neuron function uses a construct outside the Latte DSL subset."""


@dataclass
class NeuronFunctionIR:
    """Parsed body of one neuron function plus bookkeeping facts."""

    name: str  # 'forward' or 'backward'
    body: List[Stmt]
    #: connection indices referenced via self.inputs / self.grad_inputs
    input_refs: frozenset
    #: user field names referenced
    field_refs: frozenset
    #: loop variable names introduced
    loop_vars: frozenset


_BIN_OPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Pow: "**",
}

_CMP_OPS = {
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}

_AUG_OPS = {ast.Add: "add", ast.Mult: "mul"}

_NAMED_CONSTS = {"inf": math.inf, "pi": math.pi, "e": math.e}


class _Parser:
    def __init__(self, self_name: str, neuron_type, fn_name: str):
        self.self_name = self_name
        self.neuron_type = neuron_type
        self.fn_name = fn_name
        self.input_refs = set()
        self.field_refs = set()
        self.loop_vars: list = []

    # -- error helper ----------------------------------------------------

    def err(self, node, msg) -> DslError:
        line = getattr(node, "lineno", "?")
        return DslError(
            f"{self.neuron_type.__name__}.{self.fn_name} line {line}: {msg}"
        )

    # -- expressions -----------------------------------------------------

    def expr(self, node) -> Expr:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                raise self.err(node, f"unsupported constant {node.value!r}")
            return Const(node.value)
        if isinstance(node, ast.Name):
            if node.id in _NAMED_CONSTS:
                return Const(_NAMED_CONSTS[node.id])
            if node.id in self.loop_vars:
                return Var(node.id)
            raise self.err(node, f"unknown name {node.id!r}")
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                inner = self.expr(node.operand)
                if isinstance(inner, Const):
                    return Const(-inner.value)
                return UnaryOp("-", inner)
            raise self.err(node, "only unary minus is supported")
        if isinstance(node, ast.BinOp):
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                raise self.err(node, f"unsupported operator {type(node.op).__name__}")
            return BinOp(op, self.expr(node.left), self.expr(node.right))
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise self.err(node, "chained comparisons are not supported")
            op = _CMP_OPS.get(type(node.ops[0]))
            if op is None:
                raise self.err(node, "unsupported comparison")
            return Compare(op, self.expr(node.left), self.expr(node.comparators[0]))
        if isinstance(node, ast.Call):
            return self.call(node)
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            return self.reference(node)
        raise self.err(node, f"unsupported expression {type(node).__name__}")

    def call(self, node: ast.Call) -> Expr:
        if not isinstance(node.func, ast.Name):
            raise self.err(node, "only simple intrinsic calls are allowed")
        fname = node.func.id
        if fname == "len":
            ref = self._inputs_ref(node.args[0]) if node.args else None
            if ref is None:
                raise self.err(node, "len() only applies to self.inputs[j]")
            return Var(f"$len:{ref}")
        if fname == "range":
            raise self.err(node, "range() may only appear in a for statement")
        if fname not in INTRINSICS:
            raise self.err(
                node, f"call to {fname!r}; allowed intrinsics: {sorted(INTRINSICS)}"
            )
        return Call(fname, tuple(self.expr(a) for a in node.args))

    def _inputs_ref(self, node) -> Optional[int]:
        """Match ``self.inputs[j]`` (or grad_inputs) returning j, else None."""
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == self.self_name
            and node.value.attr in ("inputs", "grad_inputs")
        ):
            j = node.slice
            if isinstance(j, ast.Constant) and isinstance(j.value, int):
                return j.value
        return None

    def reference(self, node) -> Expr:
        """Lower a ``self.*`` reference to an abstract Index."""
        # self.value / self.grad (no subscript)
        if isinstance(node, ast.Attribute):
            if not (
                isinstance(node.value, ast.Name) and node.value.id == self.self_name
            ):
                raise self.err(node, "attribute access must be on self")
            if node.attr in ("value", "grad"):
                return Index(f"${node.attr}", ())
            if node.attr in self.neuron_type.fields:
                # unsubscripted access: a per-neuron scalar field
                self.field_refs.add(node.attr)
                return Index(f"$field:{node.attr}", ())
            raise self.err(node, f"unknown neuron field {node.attr!r}")
        # subscripted references
        assert isinstance(node, ast.Subscript)
        subs = self._subscripts(node.slice)
        base = node.value
        # self.inputs[j][i...] / self.grad_inputs[j][i...]
        if isinstance(base, ast.Subscript):
            j = self._inputs_ref(base)
            if j is None:
                raise self.err(node, "unsupported nested subscript")
            attr = base.value.attr  # type: ignore[union-attr]
            self.input_refs.add(j)
            return Index(f"${attr}:{j}", tuple(subs))
        if isinstance(base, ast.Attribute):
            if not (
                isinstance(base.value, ast.Name) and base.value.id == self.self_name
            ):
                raise self.err(node, "subscripted value must be a self.* field")
            if base.attr in ("inputs", "grad_inputs"):
                raise self.err(
                    node,
                    f"self.{base.attr} needs two subscripts: "
                    f"self.{base.attr}[connection][element]",
                )
            if base.attr in ("value", "grad"):
                raise self.err(node, f"self.{base.attr} is a scalar, not indexable")
            if base.attr not in self.neuron_type.fields:
                raise self.err(node, f"unknown neuron field {base.attr!r}")
            self.field_refs.add(base.attr)
            return Index(f"$field:{base.attr}", tuple(subs))
        raise self.err(node, "unsupported subscript target")

    def _subscripts(self, node) -> list:
        if isinstance(node, ast.Tuple):
            return [self.expr(e) for e in node.elts]
        return [self.expr(node)]

    # -- statements --------------------------------------------------------

    def stmt(self, node) -> Stmt:
        if isinstance(node, ast.For):
            return self.for_stmt(node)
        if isinstance(node, ast.AugAssign):
            op = _AUG_OPS.get(type(node.op))
            if op is None:
                raise self.err(node, "only += and *= are supported")
            target = self.expr(node.target)
            if not isinstance(target, Index):
                raise self.err(node, "assignment target must be a neuron field")
            return Assign(target, self.expr(node.value), reduce=op)
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                raise self.err(node, "multiple assignment targets not supported")
            target = self.expr(node.targets[0])
            if not isinstance(target, Index):
                raise self.err(node, "assignment target must be a neuron field")
            value = self.expr(node.value)
            # normalize x = max(x, e) / max(e, x) into a max-reduction
            if isinstance(value, Call) and value.func in ("max", "min"):
                args = list(value.args)
                if len(args) == 2 and target in args:
                    args.remove(target)
                    return Assign(target, args[0], reduce=value.func)
            return Assign(target, value)
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            return None  # docstring
        if isinstance(node, ast.Pass):
            return None
        raise self.err(node, f"unsupported statement {type(node).__name__}")

    def for_stmt(self, node: ast.For) -> For:
        if not isinstance(node.target, ast.Name):
            raise self.err(node, "loop target must be a simple name")
        if node.orelse:
            raise self.err(node, "for/else is not supported")
        it = node.iter
        if not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
        ):
            raise self.err(node, "loops must iterate over range(...)")
        args = [self.expr(a) for a in it.args]
        if len(args) == 1:
            start, stop = Const(0), args[0]
        elif len(args) == 2:
            start, stop = args
        else:
            raise self.err(node, "range() with a step is not supported")
        var = node.target.id
        self.loop_vars.append(var)
        body = [s for s in (self.stmt(b) for b in node.body) if s is not None]
        self.loop_vars.pop()
        return For(var, start, stop, body)


def parse_neuron_function(neuron_type, fn_name: str) -> NeuronFunctionIR:
    """Parse a neuron type's ``forward`` or ``backward`` into IR.

    The parsed IR is cached on the neuron type (keyed by the function
    object so subclass overrides re-parse).
    """
    fn = getattr(neuron_type, fn_name)
    cache = neuron_type.__dict__.get("_latte_ir_cache")
    if cache is None:
        cache = {}
        setattr(neuron_type, "_latte_ir_cache", cache)
    cached = cache.get(fn_name)
    if cached is not None and cached[0] is fn:
        return cached[1]

    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise DslError(
            f"cannot retrieve source of {neuron_type.__name__}.{fn_name}: {exc}"
        ) from exc
    tree = ast.parse(source)
    fdef = tree.body[0]
    if not isinstance(fdef, ast.FunctionDef):
        raise DslError(f"{neuron_type.__name__}.{fn_name} is not a plain function")
    if not fdef.args.args:
        raise DslError(f"{neuron_type.__name__}.{fn_name} must take self")
    parser = _Parser(fdef.args.args[0].arg, neuron_type, fn_name)
    body = [s for s in (parser.stmt(b) for b in fdef.body) if s is not None]
    result = NeuronFunctionIR(
        name=fn_name,
        body=body,
        input_refs=frozenset(parser.input_refs),
        field_refs=frozenset(parser.field_refs),
        loop_vars=frozenset(
            v for s in body for v in _collect_loop_vars(s)
        ),
    )
    cache[fn_name] = (fn, result)
    return result


def _collect_loop_vars(stmt: Stmt):
    if isinstance(stmt, For):
        yield stmt.var
        for s in stmt.body:
            yield from _collect_loop_vars(s)
