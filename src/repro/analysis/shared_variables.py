"""Shared-variable analysis (§5.2).

The compiler determines which compute nodes share data dependencies and
maps shared values to the same memory region. Two kinds of sharing are
recovered:

* **Input sharing** — sink dimensions along which every neuron's
  adjacency list is identical. These dimensions are dropped from the
  input buffer, so e.g. all output channels of a convolution read one
  shared im2col buffer, and every neuron of an FC layer aliases the whole
  source activation vector (Fig. 8: the ``n`` index disappears from
  ``fc_inputs``).

* **Field sharing** — ensemble dimensions a field's index pattern does
  not mention (e.g. convolution filters are shared across the spatial
  dimensions). The SoA rewrite indexes the field without those
  dimensions.

The facts are produced by probing connection mappings
(:mod:`repro.analysis.mapping`) and reading
:class:`~repro.core.ensemble.FieldBinding` patterns; for ensembles built
with ``Ensemble.from_neurons`` the patterns themselves were recovered
from NumPy view aliasing, the paper's "compare adjacency lists /
field aliases along a dimension" in Python terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.mapping import MappingInfo, analyze_mapping
from repro.core.ensemble import Ensemble


@dataclass
class ConnectionFacts:
    """Analysis results for one incoming connection of an ensemble."""

    mapping: MappingInfo

    @property
    def fully_shared(self) -> bool:
        """True when every sink neuron consumes the identical input set —
        the input buffer can alias the (flattened) source values with no
        data copy at all (§5.3 'special cases')."""
        return len(self.mapping.shared_sink_dims) == len(self.mapping.sink_shape)

    @property
    def identity(self) -> bool:
        """True for one-to-one connections (ActivationEnsembles)."""
        return self.mapping.kind == "one_to_one"


@dataclass
class EnsembleFacts:
    """Shared-variable facts for one synthesized ensemble."""

    ensemble: Ensemble
    connections: Tuple[ConnectionFacts, ...]
    #: field name -> ensemble dims the field is shared across
    field_shared_dims: Dict[str, frozenset]

    def field_index_dims(self, fname: str) -> tuple:
        """Ensemble dims that index the field, in pattern order — the
        dims that *survive* the SoA rewrite for this field."""
        binding = self.ensemble.field_bindings[fname]
        from repro.core.ensemble import Dim

        return tuple(p.index for p in binding.pattern if isinstance(p, Dim))


def analyze_ensemble(ens: Ensemble) -> EnsembleFacts:
    """Run shared-variable analysis for one ensemble."""
    conn_facts = []
    for conn in ens.inputs:
        if conn.analysis is None:
            conn.analysis = analyze_mapping(
                conn.mapping, conn.source.shape, ens.shape
            )
        conn_facts.append(ConnectionFacts(conn.analysis))
    field_shared = {
        fname: binding.shared_dims(ens.ndim)
        for fname, binding in ens.field_bindings.items()
    }
    return EnsembleFacts(ens, tuple(conn_facts), field_shared)
