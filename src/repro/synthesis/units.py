"""Canonical *loop unit* form used between synthesis and code generation.

Latte's DSL semantics guarantee that the computation of one neuron never
depends on another neuron of the same ensemble (§5.4.3), and data-copy
iterations are independent by construction. Loop *fission* over the
batch/neuron dimensions is therefore always legal, so instead of one big
loop tree the middle-end represents each ensemble section as a list of
:class:`LoopUnit` — a perfect scalar loop nest around a single statement.
Passes (pattern matching, tiling, fusion, vectorization) manipulate these
units; fusion groups units back under shared tile loops
(:class:`FusedGroup`), recovering the paper's Fig. 12 structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.ir import Assign, Const, Expr, For, Gemm, Stmt, Var


@dataclass
class LoopSpec:
    """One scalar loop of a unit's nest: ``for var in range(start, stop)``.

    ``extent`` is the statically-known trip count (all Latte loops have
    compile-time trip counts; tiled inner loops have symbolic bounds but a
    known extent). ``role`` tags the loop's origin: ``'batch'``,
    ``'dim'`` (ensemble dimension), ``'window'`` (flattened or
    per-dimension window), ``'user'`` (a loop written in the neuron
    function), or ``'tile'``.
    """

    var: str
    start: Expr
    stop: Expr
    extent: int
    role: str = "dim"
    #: ensemble dimension index for role='dim' loops
    dim_index: Optional[int] = None
    parallel: bool = False
    schedule: Optional[str] = None
    collapse: int = 0

    @classmethod
    def simple(cls, var: str, extent: int, role: str = "dim", dim_index=None):
        return cls(var, Const(0), Const(extent), extent, role, dim_index)


@dataclass
class UnitTags:
    """Provenance metadata used by fusion and the runtime."""

    ensemble: str = ""
    #: 'fill' | 'copy' | 'compute' | 'scatter' | 'pad' | 'unpad' | 'extern'
    kind: str = ""
    direction: str = "forward"  # 'forward' | 'backward'
    #: for copy/scatter units: the connection analysis driving them
    conn: Optional[object] = None
    #: for copy/scatter: connection index on the sink ensemble
    conn_index: Optional[int] = None
    #: buffer the unit gathers from / scatters to (for inlining)
    copy_source: Optional[str] = None
    #: buffer this unit touches at the *previous* time step (recurrent
    #: copies/scatters); such units become solo steps with shifted views
    recurrent_src: Optional[str] = None
    #: the input buffer a copy fills / a compute consumes
    note: str = ""


@dataclass
class LoopUnit:
    """A perfect loop nest around one statement."""

    loops: List[LoopSpec]
    stmt: Stmt  # Assign or Gemm
    tags: UnitTags = field(default_factory=UnitTags)

    def loop_vars(self) -> List[str]:
        return [sp.var for sp in self.loops]

    def find_loop(self, var: str) -> Optional[LoopSpec]:
        for sp in self.loops:
            if sp.var == var:
                return sp
        return None

    def iteration_count(self) -> int:
        n = 1
        for sp in self.loops:
            n *= sp.extent
        return n


@dataclass
class ShardInfo:
    """Batch-sharding metadata attached by :mod:`repro.optim.parallel`.

    A group carrying this may be executed as several contiguous batch
    shards concurrently: the Python backend emits its step function with
    ``(_b0, _b1)`` batch-bound parameters, and the executor runs one call
    per shard. ``private_accums`` names the batch-invariant buffers the
    group accumulates into (weight/bias gradients); each maps to the
    combining mode — ``'add'`` (shard partials are summed into the real
    buffer) or ``'store'`` (a first-writer-forwarded overwrite; the shard
    partials replace the buffer's contents).
    """

    #: full batch extent — the default ``_b1`` of the emitted function
    batch: int
    #: buffer name -> 'add' | 'store'
    private_accums: Dict[str, str] = field(default_factory=dict)


@dataclass
class FusedGroup:
    """Units sharing an outer tile loop after cross-layer fusion.

    ``tile_loop`` is the shared scalar loop over tiles (``None`` when a
    group is a single unfused unit); the member units' loop lists do *not*
    include it.
    """

    units: List[LoopUnit]
    tile_loop: Optional[LoopSpec] = None
    label: str = ""
    #: buffers this group reads at the previous time step (recurrent nets)
    recurrent_reads: frozenset = frozenset()
    #: set by the parallel pass when the group is batch-shardable
    shard: Optional[ShardInfo] = None


@dataclass
class Section:
    """All work for one ensemble in one direction, plus trailing
    communication calls (async gradient reduction insertion points)."""

    ensemble: str
    direction: str
    units: List[LoopUnit] = field(default_factory=list)
    externs: List = field(default_factory=list)  # ExternOp statements
    comm: List = field(default_factory=list)  # CommCall statements
    #: buffer names this section reads at the previous time step
    recurrent_reads: frozenset = frozenset()

    def is_extern(self) -> bool:
        return bool(self.externs) and not self.units


def unit_to_for_tree(unit: LoopUnit) -> Stmt:
    """Render a unit back into a plain For tree (for printing/O0)."""
    stmt: Stmt = unit.stmt
    for sp in reversed(unit.loops):
        stmt = For(
            sp.var,
            sp.start,
            sp.stop,
            [stmt],
            parallel=sp.parallel,
            schedule=sp.schedule,
            collapse=sp.collapse,
        )
    return stmt
