"""Synthesis: lowering a network to loop units (§5.3).

For every ensemble (in topological order) and both directions this module
produces a :class:`~repro.synthesis.units.Section` holding:

* **pad units** — staging copies into padded buffers when a window
  mapping reaches out of bounds;
* **copy units** — gather loop nests moving each source's output values
  into the sink's input buffer, with dimensions dropped per
  shared-variable analysis (so e.g. a convolution's im2col copy runs once
  per spatial position, not once per output channel);
* **compute units** — the neuron function body wrapped in loops over the
  batch and the ensemble's dimensions, with abstract ``self.*``
  references rewritten to concrete struct-of-arrays accesses (the AoS→SoA
  transformation of §5.3 / Fig. 8);
* **scatter units** — the reverse copies accumulating input gradients
  back into source gradient buffers during back-propagation;
* **comm calls** — asynchronous gradient-reduction insertion points after
  each ensemble's backward section (§5.3 'Distributed Memory
  Communication').

The loop-unit (fission) form is legal because neurons within an ensemble
are independent by the DSL's semantics (§5.4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.analysis.frontend import parse_neuron_function
from repro.core.ensemble import (
    DataEnsemble,
    Ensemble,
    LossEnsemble,
    NormalizationEnsemble,
)
from repro.core.ensemble import VEC, Dim
from repro.ir import (
    Assign,
    CommCall,
    Const,
    ExternOp,
    For,
    Index,
    Stmt,
    Var,
    add,
    mul,
    substitute,
    transform_exprs,
)
from repro.synthesis.plan import BufferPlan, ConnPlan
from repro.synthesis.units import LoopSpec, LoopUnit, Section, UnitTags

BATCH_VAR = "_n"


class SynthesisError(ValueError):
    """Raised when a network cannot be lowered (DSL misuse detected at
    compile time rather than run time)."""


@dataclass
class Program:
    """The synthesized program: ordered sections plus runtime closures."""

    forward: List[Section]
    backward: List[Section]
    closures: Dict[str, Callable]
    plan: BufferPlan


def dim_var(ens_name: str, k: int) -> str:
    return f"{ens_name}_d{k}"


def synthesize(net, plan: BufferPlan, options) -> Program:
    """Lower every ensemble of ``net`` into forward/backward sections."""
    closures: Dict[str, Callable] = {}
    order = net.topological_order()
    fwd: List[Section] = []
    bwd: List[Section] = []
    batch = net.batch_size
    for ens in order:
        if isinstance(ens, Ensemble):
            f_sec, b_sec = _lower_ensemble(ens, plan, options, closures)
        elif isinstance(ens, NormalizationEnsemble):
            f_sec, b_sec = _lower_normalization(ens, plan, closures)
        elif isinstance(ens, LossEnsemble):
            f_sec, b_sec = _lower_loss(ens, plan, closures)
        elif isinstance(ens, DataEnsemble):
            f_sec = Section(ens.name, "forward")
            b_sec = Section(ens.name, "backward")
        else:  # pragma: no cover
            raise TypeError(type(ens).__name__)
        fwd.append(f_sec)
        bwd.append(b_sec)
    bwd.reverse()
    if getattr(options, "mode", "train") == "inference":
        # forward-only program: backward sections survive as named
        # placeholders (passes index sections by ensemble) but carry no
        # units, externs, or comm calls
        bwd = [Section(sec.ensemble, "backward") for sec in bwd]
    for sec in fwd + bwd:
        for unit in sec.units:
            for sp in unit.loops:
                if sp.role == "batch":
                    sp.extent = batch
                    sp.stop = Const(batch)
    return Program(fwd, bwd, closures, plan)


# ---------------------------------------------------------------------------
# Synthesized (neuron) ensembles
# ---------------------------------------------------------------------------


def _lower_ensemble(ens, plan, options, closures):
    facts = plan.facts[ens.name]
    fwd = Section(ens.name, "forward")
    bwd = Section(ens.name, "backward")

    if ens.pre_forward is not None:
        key = f"{ens.name}.pre_forward"
        closures[key] = ens.pre_forward
        fwd.units.append(
            LoopUnit([], ExternOp(key, ()),
                     UnitTags(ensemble=ens.name, kind="extern",
                              direction="forward"))
        )

    fwd_recurrent, bwd_recurrent = set(), set()
    # 1. pads + copies (forward), scatters + unpads (backward)
    for j, cf in enumerate(facts.connections):
        cplan = plan.conn_plans[(ens.name, j)]
        conn = ens.inputs[j]
        if cplan.mode in ("inplace", "alias"):
            continue
        if cplan.mode == "gather":
            _make_gather(ens, j, cf, cplan, closures, fwd, bwd)
            if conn.recurrent:
                fwd_recurrent.add(cplan.src_value)
                bwd_recurrent.add(cplan.src_grad)
            continue
        if cplan.padded_value:
            fwd.units.append(_pad_unit(ens, j, cf, cplan))
        fwd.units.append(_copy_unit(ens, j, cf, cplan, "forward"))
        # backward: scatter into the (padded) source gradient first, then
        # copy the interior back out of the padding
        bwd.units.append(_copy_unit(ens, j, cf, cplan, "backward"))
        if cplan.padded_value:
            bwd.units.append(_unpad_unit(ens, j, cf, cplan))
        if conn.recurrent:
            fwd_recurrent.add(cplan.padded_value or cplan.src_value)
            bwd_recurrent.add(cplan.padded_grad or cplan.src_grad)

    # 2. compute units
    fwd.units.extend(_compute_units(ens, facts, plan, "forward"))
    if ens.neuron_type.has_backward():
        # backward compute precedes the scatters that consume its writes
        bwd.units = _compute_units(ens, facts, plan, "backward") + bwd.units

    # 3. async gradient reduction for this ensemble's parameters (§5.3)
    grad_bufs = tuple(p.grad_buf for p in plan.params if p.ensemble == ens.name)
    if grad_bufs:
        bwd.comm.append(CommCall(ens.name, grad_bufs))

    fwd.recurrent_reads = frozenset(fwd_recurrent)
    bwd.recurrent_reads = frozenset(bwd_recurrent)
    _check_recurrent_conflicts(ens, plan, fwd_recurrent)
    return fwd, bwd


def _check_recurrent_conflicts(ens, plan, recurrent_bufs):
    """A section cannot read one buffer at both t and t-1."""
    for j, _cf in enumerate(plan.facts[ens.name].connections):
        conn = ens.inputs[j]
        cplan = plan.conn_plans[(ens.name, j)]
        if not conn.recurrent and cplan.src_value in recurrent_bufs:
            raise SynthesisError(
                f"ensemble {ens.name!r} reads {conn.source.name!r} through "
                f"both recurrent and non-recurrent connections; split it "
                f"into two ensembles"
            )


# -- copies -----------------------------------------------------------------


def _window_vars(ens, j, info):
    """Loop variables for window dimensions (None where length == 1)."""
    out = []
    for d, wd in enumerate(info.dims):
        out.append(f"{ens.name}_c{j}w{d}" if wd.length > 1 else None)
    return out


def _kflat_expr(info, wvars):
    """Row-major flat window index from per-dimension window offsets."""
    expr = Const(0)
    for (wd, wv) in zip(info.dims, wvars):
        term = Var(wv) if wv is not None else Const(0)
        expr = add(mul(expr, wd.length), term)
    return expr


def _src_index(ens, info, cplan, wvars):
    """Per-source-dimension index expressions of the gather."""
    idx = []
    for d, wd in enumerate(info.dims):
        pad = cplan.pad_before[d] if cplan.pad_before else 0
        e = Const(wd.offset + pad)
        for i, c in enumerate(wd.coeffs):
            if c != 0:
                e = add(e, mul(c, Var(dim_var(ens.name, i))))
        if wvars[d] is not None:
            e = add(e, Var(wvars[d]))
        idx.append(e)
    return tuple(idx)


def _copy_unit(ens, j, cf, cplan: ConnPlan, direction) -> LoopUnit:
    info = cf.mapping
    wvars = _window_vars(ens, j, info)
    kflat = _kflat_expr(info, wvars)
    kept = info.kept_sink_dims
    kept_vars = [dim_var(ens.name, k) for k in kept]
    src_val = cplan.padded_value or cplan.src_value
    src_grd = cplan.padded_grad or cplan.src_grad
    sidx = _src_index(ens, info, cplan, wvars)

    loops = [LoopSpec.simple(BATCH_VAR, -1, role="batch")]
    for d, wv in enumerate(wvars):
        if wv is not None:
            loops.append(LoopSpec.simple(wv, info.dims[d].length, role="window"))
    for k, kv in zip(kept, kept_vars):
        loops.append(LoopSpec.simple(kv, ens.shape[k], role="dim", dim_index=k))

    buf_idx = (Var(BATCH_VAR), kflat) + tuple(Var(v) for v in kept_vars)
    if direction == "forward":
        stmt = Assign(
            Index(cplan.in_buf, buf_idx),
            Index(src_val, (Var(BATCH_VAR),) + sidx),
        )
        kind = "copy"
    else:
        stmt = Assign(
            Index(src_grd, (Var(BATCH_VAR),) + sidx),
            Index(cplan.grad_in_buf, buf_idx),
            reduce="add",
        )
        kind = "scatter"
    source = src_val if direction == "forward" else src_grd
    return LoopUnit(
        loops,
        stmt,
        UnitTags(
            ensemble=ens.name,
            kind=kind,
            direction=direction,
            conn=info,
            conn_index=j,
            copy_source=source,
            recurrent_src=source if cplan.recurrent else None,
        ),
    )


def _pad_unit(ens, j, cf, cplan) -> LoopUnit:
    src = ens.inputs[j].source
    pvars = [f"{ens.name}_c{j}p{d}" for d in range(len(src.shape))]
    loops = [LoopSpec.simple(BATCH_VAR, -1, role="batch")] + [
        LoopSpec.simple(v, s, role="dim") for v, s in zip(pvars, src.shape)
    ]
    stmt = Assign(
        Index(
            cplan.padded_value,
            (Var(BATCH_VAR),)
            + tuple(add(Var(v), pb) for v, pb in zip(pvars, cplan.pad_before)),
        ),
        Index(cplan.src_value, (Var(BATCH_VAR),) + tuple(Var(v) for v in pvars)),
    )
    return LoopUnit(
        loops, stmt, UnitTags(ensemble=ens.name, kind="pad", direction="forward")
    )


def _unpad_unit(ens, j, cf, cplan) -> LoopUnit:
    src = ens.inputs[j].source
    pvars = [f"{ens.name}_c{j}u{d}" for d in range(len(src.shape))]
    loops = [LoopSpec.simple(BATCH_VAR, -1, role="batch")] + [
        LoopSpec.simple(v, s, role="dim") for v, s in zip(pvars, src.shape)
    ]
    stmt = Assign(
        Index(cplan.src_grad, (Var(BATCH_VAR),) + tuple(Var(v) for v in pvars)),
        Index(
            cplan.padded_grad,
            (Var(BATCH_VAR),)
            + tuple(add(Var(v), pb) for v, pb in zip(pvars, cplan.pad_before)),
        ),
        reduce="add",
    )
    return LoopUnit(
        loops, stmt, UnitTags(ensemble=ens.name, kind="unpad", direction="backward")
    )


def make_gather_closures(idx, in_buf, grad_in, src_value, src_grad):
    """(forward, backward) closures for one materialized-index gather.

    Module-level so the compile cache can rebuild the pair at thaw time
    from the stored index array + buffer names (see ``repro.cache``)
    without re-running shared-variable analysis.
    """

    def gather_fwd(bufs, rt, idx=idx, in_buf=in_buf, src=src_value):
        flat = bufs[src].reshape(bufs[src].shape[0], -1)
        gathered = flat[:, idx]  # (B, *sink, K)
        bufs[in_buf][...] = np.moveaxis(gathered, -1, 1)

    def gather_bwd(bufs, rt, idx=idx, grad_in=grad_in, src=src_grad):
        flat = bufs[src].reshape(bufs[src].shape[0], -1)
        g = np.moveaxis(bufs[grad_in], 1, -1)  # (B, *sink, K)
        for b in range(flat.shape[0]):
            np.add.at(flat[b], idx, g[b])

    return gather_fwd, gather_bwd


def _make_gather(ens, j, cf, cplan, closures, fwd, bwd):
    """Non-affine mappings: materialized index arrays + runtime gather."""
    info = cf.mapping
    in_buf, grad_in = cplan.in_buf, cplan.grad_in_buf
    src_v, src_g = cplan.src_value, cplan.src_grad
    gather_fwd, gather_bwd = make_gather_closures(
        info.gather_indices, in_buf, grad_in, src_v, src_g
    )
    fkey, bkey = f"{ens.name}.gather{j}", f"{ens.name}.scatter{j}"
    closures[fkey] = gather_fwd
    closures[bkey] = gather_bwd
    recurrent = ens.inputs[j].recurrent
    fwd.units.append(
        LoopUnit([], ExternOp(fkey, (in_buf, src_v)),
                 UnitTags(ensemble=ens.name, kind="copy", direction="forward",
                          conn=info, conn_index=j,
                          recurrent_src=src_v if recurrent else None))
    )
    bwd.units.append(
        LoopUnit([], ExternOp(bkey, (grad_in, src_g)),
                 UnitTags(ensemble=ens.name, kind="scatter",
                          direction="backward", conn=info, conn_index=j,
                          recurrent_src=src_g if recurrent else None))
    )


# -- compute ------------------------------------------------------------------


def _compute_units(ens, facts, plan, direction) -> List[LoopUnit]:
    fn_ir = parse_neuron_function(ens.neuron_type, direction)
    rewriter = _RefRewriter(ens, facts, plan, direction)
    base_loops = [LoopSpec.simple(BATCH_VAR, -1, role="batch")] + [
        LoopSpec.simple(dim_var(ens.name, k), ens.shape[k], role="dim", dim_index=k)
        for k in range(ens.ndim)
    ]
    units: List[LoopUnit] = []
    _flatten(fn_ir.body, base_loops, ens, rewriter, units, direction)

    # zero-fill the value buffer when the first write accumulates
    if direction == "forward":
        vbuf = plan.value_buf(ens.name)
        for u in units:
            tgt = u.stmt.target if isinstance(u.stmt, Assign) else None
            if isinstance(tgt, Index) and tgt.buffer == vbuf:
                if u.stmt.reduce is not None:
                    fill = LoopUnit(
                        list(base_loops),
                        Assign(
                            Index(
                                vbuf,
                                (Var(BATCH_VAR),)
                                + tuple(
                                    Var(dim_var(ens.name, k))
                                    for k in range(ens.ndim)
                                ),
                            ),
                            Const(0.0),
                        ),
                        UnitTags(ensemble=ens.name, kind="fill",
                                 direction="forward"),
                    )
                    units.insert(0, fill)
                break
    return units


def _flatten(stmts, loops, ens, rewriter, out, direction):
    for s in stmts:
        if isinstance(s, For):
            start = rewriter.expr(s.start)
            stop = rewriter.expr(s.stop)
            if not (isinstance(start, Const) and isinstance(stop, Const)):
                raise SynthesisError(
                    f"{ens.name}: loop bounds must be compile-time constants"
                )
            var = f"{ens.name}__{s.var}"
            rewriter.push_loop(s.var, var)
            spec = LoopSpec(var, start, stop, int(stop.value - start.value),
                            role="user")
            _flatten(s.body, loops + [spec], ens, rewriter, out, direction)
            rewriter.pop_loop(s.var)
        elif isinstance(s, Assign):
            stmt = rewriter.assign(s)
            out.append(
                LoopUnit(
                    list(loops),
                    stmt,
                    UnitTags(ensemble=ens.name, kind="compute",
                             direction=direction),
                )
            )
        else:  # pragma: no cover - frontend restricts statements
            raise SynthesisError(f"unexpected statement {type(s).__name__}")


class _RefRewriter:
    """Rewrites abstract ``$``-references into concrete buffer indices."""

    def __init__(self, ens, facts, plan, direction):
        self.ens = ens
        self.facts = facts
        self.plan = plan
        self.direction = direction
        self.renames: Dict[str, str] = {}
        self.self_coords = (Var(BATCH_VAR),) + tuple(
            Var(dim_var(ens.name, k)) for k in range(ens.ndim)
        )

    def push_loop(self, orig, renamed):
        self.renames[orig] = renamed

    def pop_loop(self, orig):
        del self.renames[orig]

    # expression rewriting ------------------------------------------------

    def expr(self, e):
        return transform_exprs(Assign(Var("_"), e), self._map).value

    def assign(self, s: Assign) -> Assign:
        new = transform_exprs(s, self._map)
        # in-place backward rewrite: grad_inputs += f(grad,...) on an
        # aliased gradient buffer becomes grad = f(grad,...)
        if (
            self.direction == "backward"
            and self.ens.name in self.plan.inplace
            and isinstance(s.target, Index)
            and s.target.buffer.startswith("$grad_inputs:")
            and new.reduce == "add"
        ):
            return Assign(new.target, new.value, reduce=None)
        return new

    def _map(self, e):
        from repro.ir import map_expr

        def rewrite(node):
            if isinstance(node, Var):
                if node.name in self.renames:
                    return Var(self.renames[node.name])
                if node.name.startswith("$len:"):
                    j = int(node.name.split(":")[1])
                    return Const(self._conn_info(j).window_size)
            if isinstance(node, Index) and node.buffer.startswith("$"):
                return self._ref(node)
            return None

        return map_expr(rewrite, e)

    def _conn_info(self, j):
        if j >= len(self.facts.connections):
            raise SynthesisError(
                f"{self.ens.name}: neuron references inputs[{j}] but only "
                f"{len(self.facts.connections)} connections exist"
            )
        return self.facts.connections[j].mapping

    def _ref(self, node: Index):
        name = node.buffer
        ens = self.ens
        plan = self.plan
        if name == "$value":
            return Index(plan.value_buf(ens.name), self.self_coords)
        if name == "$grad":
            return Index(plan.grad_buf(ens.name), self.self_coords)
        if name.startswith("$inputs:") or name.startswith("$grad_inputs:"):
            is_grad = name.startswith("$grad_inputs:")
            j = int(name.split(":")[1])
            info = self._conn_info(j)
            cplan = plan.conn_plans[(ens.name, j)]
            if len(node.indices) != 1:
                raise SynthesisError(
                    f"{ens.name}: inputs[{j}] takes one flat subscript"
                )
            sub = node.indices[0]
            if cplan.mode == "inplace":
                # one-to-one, K == 1: the subscript must be the constant 0
                base = plan.grad_buf(ens.name) if is_grad else plan.value_buf(ens.name)
                return Index(base, self.self_coords)
            buf = cplan.grad_in_buf if is_grad else cplan.in_buf
            if cplan.mode == "alias":
                return Index(buf, (Var(BATCH_VAR), sub))
            kept = (
                info.kept_sink_dims
                if cplan.mode == "copy"
                else tuple(range(ens.ndim))
            )
            coords = (Var(BATCH_VAR), sub) + tuple(
                Var(dim_var(ens.name, k)) for k in kept
            )
            return Index(buf, coords)
        if name.startswith("$field:"):
            fname = name.split(":", 1)[1]
            binding = ens.field_bindings[fname]
            subs = list(node.indices)
            coords = []
            if binding.batch:
                coords.append(Var(BATCH_VAR))
            for p in binding.pattern:
                if p is VEC:
                    if not subs:
                        raise SynthesisError(
                            f"{ens.name}.{fname}: not enough subscripts for "
                            f"field pattern {binding.pattern}"
                        )
                    coords.append(subs.pop(0))
                elif isinstance(p, Dim):
                    coords.append(Var(dim_var(ens.name, p.index)))
                else:
                    coords.append(Const(int(p)))
            if subs:
                raise SynthesisError(
                    f"{ens.name}.{fname}: too many subscripts for field "
                    f"pattern {binding.pattern}"
                )
            return Index(plan.field_buf(ens.name, fname), tuple(coords))
        raise SynthesisError(f"unknown abstract reference {name!r}")


# ---------------------------------------------------------------------------
# Extern ensembles (normalization / loss)
# ---------------------------------------------------------------------------


def make_norm_closures(ens, vbuf, gbuf, src_vals, src_grads):
    """(forward, backward-or-None) closures for a NormalizationEnsemble.

    Bound to the *live* ensemble object (its ``forward_fn``/
    ``backward_fn``/``state``), so the compile cache rebuilds them from
    a freshly constructed net plus stored buffer names.
    """

    def fwd_fn(bufs, rt, ens=ens, vbuf=vbuf, src_vals=src_vals):
        ens.state["training"] = rt.training
        ens.state["t"] = rt.current_t
        ens.forward_fn(bufs[vbuf], [bufs[s] for s in src_vals], ens.state)

    bwd_fn = None
    if ens.backward_fn is not None:
        def bwd_fn(bufs, rt, ens=ens, vbuf=vbuf, gbuf=gbuf,
                   src_vals=src_vals, src_grads=src_grads):
            ens.state["t"] = rt.current_t
            ens.backward_fn(
                [bufs[s] for s in src_grads],
                bufs[gbuf],
                [bufs[s] for s in src_vals],
                bufs[vbuf],
                ens.state,
            )

    return fwd_fn, bwd_fn


def _lower_normalization(ens, plan, closures):
    vbuf, gbuf = plan.value_buf(ens.name), plan.grad_buf(ens.name)
    src_vals = [plan.value_buf(c.source.name) for c in ens.inputs]
    src_grads = [plan.grad_buf(c.source.name) for c in ens.inputs]
    fwd_fn, bwd_fn = make_norm_closures(ens, vbuf, gbuf, src_vals, src_grads)

    fkey = f"{ens.name}.norm_forward"
    closures[fkey] = fwd_fn
    fwd = Section(ens.name, "forward")
    fwd.units.append(
        LoopUnit([], ExternOp(fkey, tuple([vbuf] + src_vals)),
                 UnitTags(ensemble=ens.name, kind="extern", direction="forward"))
    )
    bwd = Section(ens.name, "backward")
    if bwd_fn is not None:
        bkey = f"{ens.name}.norm_backward"
        closures[bkey] = bwd_fn
        bwd.units.append(
            LoopUnit([], ExternOp(bkey, tuple([gbuf] + src_grads)),
                     UnitTags(ensemble=ens.name, kind="extern",
                              direction="backward"))
        )
    return fwd, bwd


def make_loss_closures(ens, src_vals, src_grads):
    """(forward, backward) closures for a LossEnsemble — module-level
    for the same cache-thaw reason as :func:`make_norm_closures`."""

    def fwd_fn(bufs, rt, ens=ens, src_vals=src_vals):
        ens.state["t"] = rt.current_t
        loss = ens.forward_fn([bufs[s] for s in src_vals], ens.state)
        rt.record_loss(ens.name, float(loss))

    def bwd_fn(bufs, rt, ens=ens, src_vals=src_vals, src_grads=src_grads):
        ens.state["t"] = rt.current_t
        ens.backward_fn(
            [bufs[s] for s in src_grads],
            [bufs[s] for s in src_vals],
            ens.state,
        )

    return fwd_fn, bwd_fn


def _lower_loss(ens, plan, closures):
    src_vals = [plan.value_buf(c.source.name) for c in ens.inputs]
    src_grads = [plan.grad_buf(c.source.name) for c in ens.inputs]
    fwd_fn, bwd_fn = make_loss_closures(ens, src_vals, src_grads)

    fkey, bkey = f"{ens.name}.loss_forward", f"{ens.name}.loss_backward"
    closures[fkey] = fwd_fn
    closures[bkey] = bwd_fn
    fwd = Section(ens.name, "forward")
    fwd.units.append(
        LoopUnit([], ExternOp(fkey, tuple(src_vals)),
                 UnitTags(ensemble=ens.name, kind="extern", direction="forward"))
    )
    bwd = Section(ens.name, "backward")
    bwd.units.append(
        LoopUnit([], ExternOp(bkey, tuple(src_grads)),
                 UnitTags(ensemble=ens.name, kind="extern", direction="backward"))
    )
    return fwd, bwd
