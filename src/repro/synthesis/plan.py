"""Buffer planning.

Decides, for every ensemble and connection, which memory regions exist and
which are *shared* (aliased), implementing the consequences of
shared-variable analysis (§5.2) and the in-place execution of
ActivationEnsembles (§3.2):

* a fully-shared connection's input "buffer" is a reshaped alias of the
  source's value array — no copy is synthesized and a single shared
  buffer serves every neuron (the FC case of Fig. 8);
* an ActivationEnsemble with a single-consumer source aliases the
  source's value and gradient arrays outright (in-place mode, O3+);
* window connections get an input buffer with the shared sink dimensions
  *dropped* (the im2col buffer shared across output channels), plus a
  padded staging buffer when the window reaches out of bounds;
* non-affine mappings get a general gather buffer driven by materialized
  index arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.frontend import parse_neuron_function
from repro.analysis.shared_variables import EnsembleFacts, analyze_ensemble
from repro.ir.nodes import buffers_read
from repro.core.ensemble import (
    AbstractEnsemble,
    ActivationEnsemble,
    DataEnsemble,
    Ensemble,
    LossEnsemble,
    NormalizationEnsemble,
)

DTYPE = np.float32


@dataclass
class BufferSpec:
    """One entry of the runtime buffer table."""

    name: str
    shape: Tuple[int, ...]  # without batch/time axes
    role: str  # value|grad|input|grad_input|field|padded|padded_grad
    batched: bool = True
    #: for role='field': the existing NumPy array to register (updates to
    #: parameters must flow through the user's arrays)
    array: Optional[np.ndarray] = None
    #: alias: (base buffer name, per-item reshape or None for same-shape)
    alias_of: Optional[str] = None
    alias_reshape: Optional[Tuple[int, ...]] = None
    #: gradient-role buffers are zeroed before each backward pass unless
    #: the first-writer pass proved the first toucher overwrites them
    needs_zero: bool = True
    #: storage dtype name; float32 everywhere unless the precision pass
    #: (repro.quant) retypes inference buffers
    dtype: str = "float32"

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize


@dataclass
class ConnPlan:
    """How one connection's inputs reach the sink ensemble."""

    mode: str  # 'inplace' | 'alias' | 'copy' | 'gather'
    #: input/grad-input buffer names ('' when mode='inplace')
    in_buf: str = ""
    grad_in_buf: str = ""
    #: source value/grad buffer names (post padding indirection)
    src_value: str = ""
    src_grad: str = ""
    #: padded staging buffers ('' if no padding)
    padded_value: str = ""
    padded_grad: str = ""
    pad_before: Tuple[int, ...] = ()
    #: recurrent connections read the previous time step and may never be
    #: aliased or inlined across the time boundary
    recurrent: bool = False


@dataclass
class ParamInfo:
    """A learnable parameter exposed to solvers."""

    ensemble: str
    name: str
    value_buf: str
    grad_buf: str
    lr_mult: float


@dataclass
class PrivateAccum:
    """Per-thread private accumulator storage for one shared buffer.

    Registered by the parallel pass (§5.4.3's shared-variable treatment
    applied at runtime): a batch-invariant buffer that batch shards
    accumulate into concurrently gets ``num_shards`` private copies of
    ``shape``, combined by a deterministic tree reduction after the shard
    barrier (see :mod:`repro.runtime.threads`).
    """

    name: str
    shape: Tuple[int, ...]


@dataclass
class BufferPlan:
    """Complete buffer table plus per-ensemble facts and connection plans."""

    batch_size: int
    time_steps: int
    buffers: Dict[str, BufferSpec] = field(default_factory=dict)
    facts: Dict[str, EnsembleFacts] = field(default_factory=dict)
    conn_plans: Dict[Tuple[str, int], ConnPlan] = field(default_factory=dict)
    params: List[ParamInfo] = field(default_factory=list)
    #: ensembles executed in place (value/grad alias their source's)
    inplace: Dict[str, str] = field(default_factory=dict)  # ens -> source
    #: buffers needing per-thread private accumulators under batch
    #: sharding (filled by repro.optim.parallel, allocated by
    #: repro.runtime.buffers.allocate_private)
    private_accums: Dict[str, PrivateAccum] = field(default_factory=dict)
    #: whole-program liveness/arena layout (a
    #: :class:`repro.synthesis.liveness.MemoryPlan`), attached by the
    #: compile pipeline's ``memory_plan`` pass; None = every buffer is
    #: individually allocated
    memory: Optional[object] = None
    #: reduced-precision plan (a :class:`repro.quant.qplan.QuantPlan`),
    #: attached by the pipeline's ``precision`` pass; None = pure fp32
    quant: Optional[object] = None

    def add(self, spec: BufferSpec) -> str:
        if spec.name in self.buffers:
            raise ValueError(f"duplicate buffer name {spec.name!r}")
        self.buffers[spec.name] = spec
        return spec.name

    def mark_private(self, name: str) -> None:
        """Register ``name`` (an unbatched, non-alias buffer) for
        per-thread private accumulator allocation."""
        spec = self.buffers[name]
        self.private_accums[name] = PrivateAccum(name, tuple(spec.shape))

    def value_buf(self, ens_name: str) -> str:
        return f"{ens_name}_value"

    def grad_buf(self, ens_name: str) -> str:
        return f"{ens_name}_grad"

    def field_buf(self, ens_name: str, fname: str) -> str:
        return f"{ens_name}_{fname}"

    def resolve_alias(self, name: str) -> str:
        """Follow alias links to the owning buffer."""
        seen = set()
        while self.buffers[name].alias_of is not None:
            if name in seen:
                raise ValueError(f"alias cycle through {name!r}")
            seen.add(name)
            name = self.buffers[name].alias_of
        return name


def _consumers(ens: AbstractEnsemble) -> list:
    """Non-recurrent connections consuming ``ens``."""
    return [
        c
        for c in ens.net.connections
        if c.source is ens and not c.recurrent
    ]


def plan_buffers(net, options) -> BufferPlan:
    """Build the buffer plan for a whole network."""
    plan = BufferPlan(net.batch_size, net.time_steps)
    order = net.topological_order()

    # First pass: per-ensemble value/grad/field buffers and facts.
    for ens in order:
        vname, gname = plan.value_buf(ens.name), plan.grad_buf(ens.name)
        if isinstance(ens, Ensemble):
            facts = analyze_ensemble(ens)
            plan.facts[ens.name] = facts
            inplace_src = _inplace_source(ens, facts, options, net)
            if inplace_src is not None:
                plan.inplace[ens.name] = inplace_src.name
                plan.add(BufferSpec(vname, ens.shape, "value",
                                    alias_of=plan.value_buf(inplace_src.name)))
                plan.add(BufferSpec(gname, ens.shape, "grad",
                                    alias_of=plan.grad_buf(inplace_src.name)))
            else:
                plan.add(BufferSpec(vname, ens.shape, "value"))
                plan.add(BufferSpec(gname, ens.shape, "grad"))
            for fname, binding in ens.field_bindings.items():
                bname = plan.field_buf(ens.name, fname)
                if binding.batch:
                    plan.add(BufferSpec(bname, binding.array.shape, "field",
                                        batched=True))
                else:
                    plan.add(BufferSpec(bname, binding.array.shape, "field",
                                        batched=False, array=binding.array))
            for p in ens.params:
                plan.params.append(ParamInfo(
                    ens.name, p.name,
                    plan.field_buf(ens.name, p.name),
                    plan.field_buf(ens.name, p.grad_name),
                    p.lr_mult,
                ))
        elif isinstance(ens, (DataEnsemble, NormalizationEnsemble)):
            plan.add(BufferSpec(vname, ens.shape, "value"))
            plan.add(BufferSpec(gname, ens.shape, "grad"))
        elif isinstance(ens, LossEnsemble):
            pass  # loss ensembles own no array buffers
        else:  # pragma: no cover - future ensemble kinds
            raise TypeError(f"unknown ensemble kind {type(ens).__name__}")

    # Second pass: connection plans (needs all value buffers present).
    for ens in order:
        if not isinstance(ens, Ensemble):
            continue
        facts = plan.facts[ens.name]
        for j, cf in enumerate(facts.connections):
            plan.conn_plans[(ens.name, j)] = _plan_connection(
                plan, ens, j, cf, options
            )
    return plan


def _inplace_source(ens, facts, options, net) -> Optional[AbstractEnsemble]:
    """Return the source to run in place on, or None."""
    if not options.inplace or not isinstance(ens, ActivationEnsemble):
        return None
    if len(facts.connections) != 1 or not facts.connections[0].identity:
        return None
    conn = ens.inputs[0]
    if conn.recurrent:
        return None
    src = conn.source
    # the source must own mutable buffers and feed only this ensemble
    if not isinstance(src, Ensemble):
        return None
    if len(_consumers(src)) != 1:
        return None
    # the source's backward must not read its own output value: in-place
    # execution lets the sink's forward clobber src_value, so e.g. max
    # pooling (whose backward compares inputs against self.value to route
    # the gradient) can never host an in-place activation
    if _backward_reads_value(src.neuron_type):
        return None
    return src


@lru_cache(maxsize=None)
def _backward_reads_value(neuron_type) -> bool:
    """Whether ``neuron_type``'s backward body reads ``self.value``."""
    if not neuron_type.has_backward():
        return False
    fn_ir = parse_neuron_function(neuron_type, "backward")
    return any("$value" in buffers_read(stmt) for stmt in fn_ir.body)


def _plan_connection(plan, ens, j, cf, options) -> ConnPlan:
    info = cf.mapping
    conn = ens.inputs[j]
    src = conn.source
    src_value = plan.value_buf(src.name)
    src_grad = plan.grad_buf(src.name)

    if plan.inplace.get(ens.name) == src.name and not conn.recurrent:
        return ConnPlan("inplace", src_value=src_value, src_grad=src_grad)

    if conn.recurrent and info.kind != "gather":
        # a time-shifted read can never alias the current buffers; stage
        # it through a real input copy
        kept_shape = tuple(ens.shape[d] for d in info.kept_sink_dims)
        k = info.window_size
        in_buf = f"{ens.name}_inputs{j}"
        grad_in = f"{ens.name}_grad_inputs{j}"
        plan.add(BufferSpec(in_buf, (k,) + kept_shape, "input"))
        plan.add(BufferSpec(grad_in, (k,) + kept_shape, "grad_input"))
        if info.needs_padding:
            raise ValueError(
                f"recurrent connection into {ens.name!r} requires padding, "
                f"which is not supported across time steps"
            )
        return ConnPlan("copy", in_buf, grad_in, src_value, src_grad,
                        pad_before=tuple(0 for _ in src.shape),
                        recurrent=True)

    if cf.fully_shared and info.kind == "all_to_all":
        k = info.window_size
        in_buf = f"{ens.name}_inputs{j}"
        grad_in = f"{ens.name}_grad_inputs{j}"
        plan.add(BufferSpec(in_buf, (k,), "input",
                            alias_of=src_value, alias_reshape=(k,)))
        plan.add(BufferSpec(grad_in, (k,), "grad_input",
                            alias_of=src_grad, alias_reshape=(k,)))
        return ConnPlan("alias", in_buf, grad_in, src_value, src_grad)

    if info.kind in ("window", "one_to_one"):
        kept_shape = tuple(ens.shape[d] for d in info.kept_sink_dims)
        k = info.window_size
        in_buf = f"{ens.name}_inputs{j}"
        grad_in = f"{ens.name}_grad_inputs{j}"
        plan.add(BufferSpec(in_buf, (k,) + kept_shape, "input"))
        plan.add(BufferSpec(grad_in, (k,) + kept_shape, "grad_input"))
        padded_value = padded_grad = ""
        pad_before: Tuple[int, ...] = tuple(0 for _ in src.shape)
        if info.needs_padding:
            pads = info.padding()
            pad_before = tuple(b for b, _ in pads)
            padded_shape = tuple(
                s + b + a for s, (b, a) in zip(src.shape, pads)
            )
            padded_value = f"{ens.name}_padsrc{j}"
            padded_grad = f"{ens.name}_padsrc{j}_grad"
            plan.add(BufferSpec(padded_value, padded_shape, "padded"))
            plan.add(BufferSpec(padded_grad, padded_shape, "padded_grad"))
        return ConnPlan(
            "copy", in_buf, grad_in, src_value, src_grad,
            padded_value, padded_grad, pad_before,
        )

    # general gather
    k = info.window_size
    in_buf = f"{ens.name}_inputs{j}"
    grad_in = f"{ens.name}_grad_inputs{j}"
    plan.add(BufferSpec(in_buf, (k,) + ens.shape, "input"))
    plan.add(BufferSpec(grad_in, (k,) + ens.shape, "grad_input"))
    return ConnPlan("gather", in_buf, grad_in, src_value, src_grad)
