"""Program synthesis: buffer planning and loop-unit lowering (§5.3)."""

from repro.synthesis.lower import Program, SynthesisError, synthesize
from repro.synthesis.plan import (
    BufferPlan,
    BufferSpec,
    ConnPlan,
    ParamInfo,
    plan_buffers,
)
from repro.synthesis.units import (
    FusedGroup,
    LoopSpec,
    LoopUnit,
    Section,
    UnitTags,
)

__all__ = [
    "BufferPlan",
    "BufferSpec",
    "ConnPlan",
    "FusedGroup",
    "LoopSpec",
    "LoopUnit",
    "ParamInfo",
    "Program",
    "Section",
    "SynthesisError",
    "UnitTags",
    "plan_buffers",
    "synthesize",
]
