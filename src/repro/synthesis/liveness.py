"""Whole-program buffer liveness and arena planning.

The paper's §5.2 shares memory *pairwise* — an alias here, a dropped
copy there. This module extends that to whole-program reuse, the way
compiler-infrastructure successors to Latte (DLVM, DeepDSL) treat
preallocation: given the final scheduled forward/backward step lists it

1. computes, for every base (non-alias) buffer, a **live interval** over
   the linearized program points ``[fwd item 0 .. fwd item F-1,
   bwd item 0 .. bwd item B-1]``,
2. decides which buffers are **pool candidates** — excluded are
   parameter fields (user-owned arrays), field buffers written by opaque
   ``pre_forward`` closures, privatized accumulators, recurrent-read
   sources (their previous-time-step slices outlive the linear model),
   padded *value* staging buffers (their zero border is written once at
   allocation and never again), and everything in the ``keep_alive``
   set (user-inspectable ``value()``/``grad()`` arrays), and
3. assigns the candidates to shared **slabs** of a single arena by
   first-fit interval-graph coloring (largest first), so buffers whose
   intervals never overlap occupy the same bytes.

A candidate is admitted only when its contents are fully (re)defined
before every read of an iteration:

* its first access in program order is a write that covers the buffer
  (synthesized copy/compute/fill nests always span the full extents), or
* it is a gradient-role buffer the executor used to blanket-zero before
  each backward pass; the planner instead schedules a **zero def**
  immediately before the buffer's first touching backward step (recorded
  in :attr:`MemoryPlan.zero_defs`, materialized by the executor's
  pre-bound step programs). Deferring the zero is what frees the slab
  for forward-phase tenants and lets disjoint backward gradients chain
  through the same bytes.

For time-unrolled networks (``time_steps > 1``) the linear model is
unsound *within* a phase — item ``i`` at time ``t+1`` executes after
item ``j > i`` at time ``t`` — so sharing is restricted to pairs whose
accesses fall in strictly different phases (forward-only with
backward-only); every slice of the forward tenant is dead once the
backward phase begins.

The result is a :class:`MemoryPlan` stored on the
:class:`~repro.synthesis.plan.BufferPlan`; ``repro.runtime.buffers``
materializes it as offset views into one arena allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.ensemble import DataEnsemble, LossEnsemble
from repro.ir import CommCall, ExternOp, buffers_read, buffers_written
from repro.synthesis.plan import BufferPlan, BufferSpec

#: arena slab alignment in bytes — 64 bytes, one cache line, matching
#: what a fresh ``np.zeros`` typically provides; also guarantees every
#: slab offset is a multiple of any member's itemsize, so typed views
#: (``arena[off:off+n].view(dtype)``) are always legal
ALIGN_BYTES = 64

#: gradient-role buffers eligible for a scheduled zero def
GRAD_ROLES = ("grad", "grad_input", "padded_grad")


@dataclass
class Interval:
    """Live range of one base buffer over the linearized program."""

    buffer: str
    #: linear point of the first/last access (-1 when never touched)
    first: int = -1
    last: int = -1
    #: phases ('forward'/'backward') with at least one access
    phases: Set[str] = field(default_factory=set)
    #: kind of the first access: 'w' (clean write), 'r' (read or
    #: read-modify-write), 'x' (extern touch), None (dead)
    first_kind: Optional[str] = None

    @property
    def dead(self) -> bool:
        return self.first < 0

    def overlaps(self, other: "Interval") -> bool:
        if self.dead or other.dead:
            return False
        return self.first <= other.last and other.first <= self.last


@dataclass
class Slab:
    """One shared region of the arena."""

    offset: int  # bytes from arena start (64-byte aligned)
    nbytes: int  # size in bytes (max over members, any dtype)
    members: List[str] = field(default_factory=list)


@dataclass
class MemoryPlan:
    """Arena layout + bookkeeping produced by :func:`plan_memory`.

    All offsets and sizes are **bytes** — buffers of different dtypes
    (fp32/fp16/int8 after the precision pass) share one ``uint8`` arena
    through typed views, so element counts would be ambiguous.
    """

    #: base buffer name -> byte offset into the arena
    offsets: Dict[str, int] = field(default_factory=dict)
    #: total arena size in bytes
    arena_bytes: int = 0
    slabs: List[Slab] = field(default_factory=list)
    #: base buffers sharing arena storage (not individually allocated)
    pooled: frozenset = frozenset()
    #: buffer -> (phase, item_index): zero the full array right before
    #: this step on the first-executed time step of the phase, replacing
    #: the executor's blanket pre-backward zeroing for pooled buffers
    zero_defs: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: every base buffer's live interval (kept ones too, for reporting)
    intervals: Dict[str, Interval] = field(default_factory=dict)
    #: bytes of non-parameter buffers without pooling / with pooling
    naive_bytes: int = 0
    planned_bytes: int = 0
    #: why each non-candidate buffer was kept (reporting/tests)
    kept_reasons: Dict[str, str] = field(default_factory=dict)

    @property
    def saved_bytes(self) -> int:
        return self.naive_bytes - self.planned_bytes

    @property
    def reuse_fraction(self) -> float:
        """Fraction of naive non-parameter bytes eliminated by reuse."""
        if not self.naive_bytes:
            return 0.0
        return self.saved_bytes / self.naive_bytes

    def stats(self) -> Dict[str, object]:
        return {
            "buffers_pooled": len(self.pooled),
            "slabs": len(self.slabs),
            "arena_bytes": self.arena_bytes,
            "naive_bytes": self.naive_bytes,
            "planned_bytes": self.planned_bytes,
            "saved_bytes": self.saved_bytes,
            "reuse_pct": round(100.0 * self.reuse_fraction, 2),
        }


def full_shape(plan: BufferPlan, spec: BufferSpec) -> Tuple[int, ...]:
    """Allocated shape of a buffer including batch/time lead axes
    (mirrors ``repro.runtime.buffers.allocate``)."""
    lead: Tuple[int, ...] = ()
    if spec.batched and spec.array is None:
        lead = (plan.batch_size,)
        if plan.time_steps > 1:
            lead = (plan.time_steps, plan.batch_size)
    return lead + tuple(spec.shape)


def buffer_elems(plan: BufferPlan, spec: BufferSpec) -> int:
    n = 1
    for d in full_shape(plan, spec):
        n *= d
    return n


def buffer_nbytes(plan: BufferPlan, spec: BufferSpec) -> int:
    """Allocated size in bytes, honoring the spec's storage dtype."""
    return buffer_elems(plan, spec) * spec.itemsize


# ---------------------------------------------------------------------------
# Access walk
# ---------------------------------------------------------------------------


def _item_accesses(item) -> Iterable[Tuple[str, str]]:
    """Yield ``(buffer, kind)`` in execution order for one schedule item.

    ``kind`` is ``'r'`` (read, including the target of a reduction or an
    index array), ``'w'`` (write) or ``'x'`` (opaque extern touch). A
    statement's reads are yielded before its write, so a buffer whose
    first yielded access is ``'w'`` is defined before any use.
    """
    if isinstance(item, CommCall):
        for b in item.params:
            yield b, "r"
        return
    for unit in item.units:
        stmt = unit.stmt
        if isinstance(stmt, ExternOp):
            for b in stmt.buffers:
                yield b, "x"
            continue
        reads = buffers_read(stmt)
        for b in sorted(reads):
            yield b, "r"
        for b in sorted(buffers_written(stmt)):
            yield b, "w"


def _scan(plan: BufferPlan, fwd_items, bwd_items):
    """First/last/kind-of-first-access per *base* buffer, plus the
    first touching backward item index per base (for zero defs)."""
    intervals: Dict[str, Interval] = {}
    first_bwd_item: Dict[str, int] = {}
    point = 0
    for phase, items in (("forward", fwd_items), ("backward", bwd_items)):
        for idx, item in enumerate(items):
            for name, kind in _item_accesses(item):
                if name not in plan.buffers:
                    continue  # extern-declared scratch outside the plan
                base = plan.resolve_alias(name)
                iv = intervals.get(base)
                if iv is None:
                    iv = intervals[base] = Interval(base)
                if iv.first < 0:
                    iv.first = point
                    iv.first_kind = kind
                iv.last = point
                iv.phases.add(phase)
                if phase == "backward" and base not in first_bwd_item:
                    first_bwd_item[base] = idx
            point += 1
    # dead buffers still get interval records
    for name, spec in plan.buffers.items():
        if spec.alias_of is None and name not in intervals:
            intervals[name] = Interval(name)
    return intervals, first_bwd_item


def _recurrent_bases(plan: BufferPlan, fwd_items, bwd_items) -> Set[str]:
    """Bases read (or scattered into) at the previous time step."""
    out: Set[str] = set()
    for items in (fwd_items, bwd_items):
        for item in items:
            reads = getattr(item, "recurrent_reads", None)
            if reads:
                for name in reads:
                    if name in plan.buffers:
                        out.add(plan.resolve_alias(name))
    return out


def _mandatory_keep_ensembles(net) -> Set[str]:
    """Ensembles whose value/grad arrays outlive the program contract:
    data inputs (fed/inspected outside the step lists), network sinks
    (the user reads outputs / seeds output gradients), and ensembles
    feeding a loss (inspected as ``value('head')`` by convention)."""
    keep: Set[str] = set()
    has_consumer = {c.source.name for c in net.connections}
    for ens in net.ensembles.values():
        if isinstance(ens, DataEnsemble):
            keep.add(ens.name)
        elif isinstance(ens, LossEnsemble):
            for c in ens.inputs:
                keep.add(c.source.name)
        elif ens.name not in has_consumer:
            keep.add(ens.name)
    return keep


# ---------------------------------------------------------------------------
# Forward-only buffer pruning (inference compilation)
# ---------------------------------------------------------------------------


def prune_unused_buffers(plan: BufferPlan, fwd_items, bwd_items) -> Dict[str, int]:
    """Drop buffer-table entries no scheduled item references.

    Used by inference compilation: with the backward program empty, the
    gradient/accumulator half of the table (``*_grad``, ``*_grad_inputs``,
    padded-gradient staging) is dead weight that would otherwise be
    allocated — or worse, admitted to the arena and distort its layout.

    Kept regardless of references:

    * parameter/field storage (``spec.array`` set, or ``role ==
      'field'``) — user-owned arrays plus batch fields written by opaque
      ``pre_forward`` closures that declare no buffer list (e.g. the
      dropout mask);
    * both buffers of every :class:`~repro.synthesis.plan.ParamInfo`, so
      ``parameters()`` / ``clear_param_grads`` stay well-formed;
    * the full alias chain beneath any surviving buffer.

    Returns counters for the compile report (``buffers_pruned`` and the
    allocated ``bytes_pruned`` they would have occupied).
    """
    referenced: Set[str] = set()
    for items in (fwd_items, bwd_items):
        for item in items:
            for name, _kind in _item_accesses(item):
                if name in plan.buffers:
                    referenced.add(name)
    keep: Set[str] = set(referenced)
    for name, spec in plan.buffers.items():
        if spec.array is not None or spec.role == "field":
            keep.add(name)
    for p in plan.params:
        for name in (p.value_buf, p.grad_buf):
            if name in plan.buffers:
                keep.add(name)
    # close over alias chains: every kept alias needs its base allocated
    for name in list(keep):
        link = plan.buffers[name].alias_of
        while link is not None:
            keep.add(link)
            link = plan.buffers[link].alias_of
    pruned_bytes = 0
    dropped = [n for n in plan.buffers if n not in keep]
    for name in dropped:
        spec = plan.buffers[name]
        if spec.alias_of is None and spec.array is None:
            pruned_bytes += buffer_nbytes(plan, spec)
        del plan.buffers[name]
    return {"buffers_pruned": len(dropped), "bytes_pruned": pruned_bytes}


# ---------------------------------------------------------------------------
# Memory-aware backward scheduling
# ---------------------------------------------------------------------------


def _item_rw(plan: BufferPlan, item) -> Tuple[Set[str], Set[str]]:
    """Base-resolved (reads, writes) of one schedule item; opaque extern
    touches count as both."""
    reads: Set[str] = set()
    writes: Set[str] = set()
    for name, kind in _item_accesses(item):
        if name not in plan.buffers:
            continue
        base = plan.resolve_alias(name)
        if kind in ("r", "x"):
            reads.add(base)
        if kind in ("w", "x"):
            writes.add(base)
    return reads, writes


def reorder_backward(plan: BufferPlan, bwd_items: list) -> int:
    """Reorder the backward schedule in place to shrink live intervals.

    Stable, dependency-exact list scheduling: among the ready items,
    greedily pick the one that frees the most bytes (it is the last
    remaining toucher of large buffers) net of the bytes it births
    (buffers it touches first). The weight-gradient GEMM — the *last*
    reader of a conv layer's im2col buffer — is thereby hoisted above
    the data-gradient GEMM that *births* the equally-large grad-input
    buffer, making the two intervals disjoint so the planner can overlay
    them. Ties fall back to the original order.

    Only the relative order of provably independent items changes, and
    every step reads bit-identical operands in either order, so outputs
    are unchanged bitwise. Extern items (loss/norm closures with
    interpreter-visible side effects) and comm items are additionally
    kept in their original relative order. Time-unrolled schedules are
    left untouched — the linear dependence model does not cover
    cross-iteration recurrent carries. Returns the number of items that
    moved.
    """
    n = len(bwd_items)
    if plan.time_steps > 1 or n < 3:
        return 0
    rw = [_item_rw(plan, item) for item in bwd_items]
    opaque = [
        isinstance(item, CommCall)
        or any(isinstance(u.stmt, ExternOp) for u in item.units)
        for item in bwd_items
    ]
    succs: List[List[int]] = [[] for _ in range(n)]
    indeg = [0] * n
    for i in range(n):
        ri, wi = rw[i]
        for j in range(i + 1, n):
            rj, wj = rw[j]
            if (wi & (rj | wj)) or (ri & wj) or (opaque[i] and opaque[j]):
                succs[i].append(j)
                indeg[j] += 1
    touchers: Dict[str, int] = {}
    seen_bases: Set[str] = set()
    for reads, writes in rw:
        for b in reads | writes:
            touchers[b] = touchers.get(b, 0) + 1
    nbytes = {
        b: buffer_nbytes(plan, plan.buffers[b])
        for b in touchers
        if plan.buffers[b].array is None
    }

    def score(i: int) -> int:
        reads, writes = rw[i]
        freed = born = 0
        for b in reads | writes:
            size = nbytes.get(b)
            if size is None:
                continue  # parameter storage is permanent
            if touchers[b] == 1:
                freed += size
            if b not in seen_bases:
                born += size
        return freed - born

    order: List[int] = []
    ready = [i for i in range(n) if indeg[i] == 0]
    while ready:
        best = max(ready, key=lambda i: (score(i), -i))
        ready.remove(best)
        order.append(best)
        reads, writes = rw[best]
        for b in reads | writes:
            touchers[b] -= 1
            seen_bases.add(b)
        for j in succs[best]:
            indeg[j] -= 1
            if indeg[j] == 0:
                ready.append(j)
    assert len(order) == n  # the dep graph is acyclic by construction
    moved = sum(1 for pos, i in enumerate(order) if pos != i)
    if moved:
        bwd_items[:] = [bwd_items[i] for i in order]
    return moved


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


def plan_memory(
    net,
    plan: BufferPlan,
    fwd_items,
    bwd_items,
    keep_alive: Optional[Iterable[str]] = None,
) -> MemoryPlan:
    """Compute the arena layout for one compiled schedule.

    ``keep_alive`` lists ensembles whose value/grad buffers must stay
    individually allocated for post-run inspection. ``None`` (the
    default) keeps *every* ensemble inspectable — reuse then comes from
    the input/grad-input/padded staging buffers, which dominate
    footprint for convolutional nets (the im2col copies). Passing an
    explicit collection opts the remaining ensembles out of inspection
    and into the pool; data ensembles, network sinks, and loss feeders
    are always kept regardless.
    """
    mem = MemoryPlan()
    intervals, first_bwd_item = _scan(plan, fwd_items, bwd_items)
    mem.intervals = intervals
    recurrent = _recurrent_bases(plan, fwd_items, bwd_items)

    keep_bufs: Set[str] = set()
    keep_ens = _mandatory_keep_ensembles(net)
    if keep_alive is None:
        keep_ens |= set(net.ensembles)
    else:
        keep_ens |= {str(e) for e in keep_alive}
    unknown = keep_ens - set(net.ensembles)
    if unknown:
        raise KeyError(
            f"keep_alive names unknown ensembles: {sorted(unknown)}"
        )
    for e in keep_ens:
        for name in (plan.value_buf(e), plan.grad_buf(e)):
            if name in plan.buffers:
                keep_bufs.add(plan.resolve_alias(name))

    privatized = {
        plan.resolve_alias(n)
        for n in plan.private_accums
        if n in plan.buffers
    }

    def keep_reason(base: str, spec: BufferSpec) -> Optional[str]:
        iv = intervals[base]
        if spec.array is not None:
            return "parameter"
        if spec.role == "field":
            return "field"  # written by opaque pre_forward closures
        if spec.role == "padded":
            return "pad-border"  # zero border written only at allocation
        if base in privatized:
            return "privatized"
        if base in recurrent:
            return "recurrent"
        if base in keep_bufs:
            return "keep_alive"
        if iv.dead:
            return None  # dead buffers pool freely
        if iv.first_kind == "w":
            return None  # defined before use every iteration
        if spec.role in GRAD_ROLES and spec.needs_zero:
            if iv.phases == {"backward"} and base in first_bwd_item:
                return None  # zero def scheduled below
            return "grad-outside-backward"
        return "live-in"  # first access reads state from a prior run

    candidates: List[str] = []
    for base, spec in plan.buffers.items():
        if spec.alias_of is not None:
            continue
        reason = keep_reason(base, spec)
        if reason is None:
            candidates.append(base)
        else:
            mem.kept_reasons[base] = reason

    # schedule zero defs for pooled gradient buffers that used to rely
    # on the executor's blanket pre-backward zeroing
    for base in candidates:
        spec = plan.buffers[base]
        iv = intervals[base]
        if (
            spec.role in GRAD_ROLES
            and spec.needs_zero
            and not iv.dead
            and iv.first_kind != "w"
        ):
            mem.zero_defs[base] = ("backward", first_bwd_item[base])

    # -- interval-graph coloring: first fit, largest first ------------------
    sizes = {b: buffer_nbytes(plan, plan.buffers[b]) for b in candidates}
    multiphase = plan.time_steps > 1

    def conflicts(a: str, b: str) -> bool:
        ia, ib = intervals[a], intervals[b]
        if ia.dead or ib.dead:
            return False
        if multiphase:
            # the linear model is only sound across the phase barrier
            return bool(ia.phases & ib.phases)
        return ia.overlaps(ib)

    slabs: List[Slab] = []
    for b in sorted(candidates, key=lambda b: (-sizes[b], b)):
        placed = None
        for slab in slabs:
            if all(not conflicts(b, m) for m in slab.members):
                placed = slab
                break
        if placed is None:
            placed = Slab(offset=0, nbytes=0)
            slabs.append(placed)
        placed.members.append(b)
        placed.nbytes = max(placed.nbytes, sizes[b])

    offset = 0
    for slab in slabs:
        slab.offset = offset
        for m in slab.members:
            mem.offsets[m] = offset
        offset += -(-slab.nbytes // ALIGN_BYTES) * ALIGN_BYTES
    mem.arena_bytes = offset
    mem.slabs = slabs
    mem.pooled = frozenset(candidates)

    # -- accounting (non-parameter bytes) -----------------------------------
    naive = planned = 0
    for base, spec in plan.buffers.items():
        if spec.alias_of is not None or spec.array is not None:
            continue
        nbytes = buffer_nbytes(plan, spec)
        naive += nbytes
        if base not in mem.pooled:
            planned += nbytes
    mem.naive_bytes = naive
    mem.planned_bytes = planned + mem.arena_bytes
    return mem
