"""C/OpenMP backend: paper-style rendering *and* native execution.

Two artifacts come out of this module:

* :func:`render_items` — the C++/OpenMP *rendering* the paper presents
  (Figures 9, 10, 12): the post-optimization schedule printed with
  symbolic loop bounds and ``gemm(...)`` calls. Used for inspection,
  golden tests, and documentation; never compiled.

* the **executable native backend** (``CompilerOptions(backend="c")``):
  every fused step is lowered to a standalone C function, the whole
  program is compiled once with the system toolchain (``cc`` →
  shared object) and loaded via :mod:`ctypes`. Buffers stay NumPy-owned
  — each step receives raw ``float*`` pointers into the executor's
  buffer table, so checkpoints, the memory planner's arena offsets,
  tracer spans, and ``rebind_buffer`` keep working unchanged.

The native lowering contract:

* one exported C function per fused step, named exactly like its Python
  twin (``_step_f0``, ``_step_b3``, ...), with the signature
  ``void step(float* <buf>, ..., long long _b0, long long _b1,
  long long _omp)`` where the buffer pointers are the step's touched
  buffers in sorted-name order and ``_b0/_b1`` are the same batch-shard
  bounds the threaded Python backend's step functions take;
* scalar :class:`~repro.ir.Assign` units become plain loop nests over
  flat row-major offsets (strides baked in at compile time from the
  buffer plan), with value arithmetic performed in ``double`` and
  results stored as ``float`` — mirroring the O0 interpreter's
  float64-compute/float32-store behaviour;
* pattern-matched :class:`~repro.ir.Gemm` units become loop nests over
  the matched einsum letters — free (output) letters outer, contraction
  letters inner — accumulating into a local ``double`` with
  ``#pragma omp simd reduction`` on the innermost contraction loop;
* batch-disjoint outer loops carry ``#pragma omp parallel for``
  guarded by the per-call ``_omp`` thread count, which the binder pins
  to 1 whenever the executor itself shards batches across threads (no
  oversubscription, and bitwise-reproducible at 1 thread);
* any step the lowering cannot express (extern closures such as
  softmax-loss, or exotic index forms) silently keeps its Python step
  function — programs are hybrid by construction.

Steps that stay Python are recorded with a reason in
``CompiledProgram.c_skipped`` for diagnostics and tests.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ir import (
    Assign,
    BinOp,
    Call,
    CommCall,
    Compare,
    Const,
    ExternOp,
    For,
    Gemm,
    Index,
    SliceExpr,
    UnaryOp,
    Var,
)
from repro.ir.printer import to_c
from repro.synthesis.units import FusedGroup, LoopUnit, unit_to_for_tree


def render_items(items, title: str = "") -> str:
    """Render a schedule (list of FusedGroup/CommCall) as C-like source."""
    out: List[str] = []
    if title:
        out.append(f"// === {title} ===")
    for item in items:
        if isinstance(item, CommCall):
            out.append(to_c(item))
            continue
        assert isinstance(item, FusedGroup)
        out.append(f"// {item.label}")
        trees = [unit_to_for_tree(u) for u in item.units]
        if item.tile_loop is not None:
            sp = item.tile_loop
            tree = For(
                sp.var,
                sp.start,
                sp.stop,
                trees,
                parallel=sp.parallel,
                collapse=sp.collapse,
                schedule=sp.schedule,
            )
            out.append(to_c(tree))
        else:
            out.extend(to_c(t) for t in trees)
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# Native backend: toolchain detection and shared-object builds
# ---------------------------------------------------------------------------

class CBackendUnavailable(RuntimeError):
    """No working C toolchain (or a build failed); carries the reason."""


class _Unlowerable(Exception):
    """Internal: this step cannot be expressed in C; keep its Python fn."""


_F32 = np.dtype(np.float32)

#: params/locals we must never collide with, plus C keywords a user's
#: ensemble name could accidentally spell
_C_RESERVED = frozenset("""
auto break case char const continue default do double else enum extern
float for goto if inline int long register restrict return short signed
sizeof static struct switch typedef union unsigned void volatile while
_b0 _b1 _omp _acc _pa _pb _pc _M _N _K _v _t
""".split())

_BASE_FLAGS = ["-O3", "-fPIC", "-shared"]
_EXTRA_FLAGS = ["-march=native", "-fopenmp"]

_PROBE_SRC = (
    "int latte_probe(int x) {\n"
    "  double s = 0;\n"
    "  #pragma omp parallel for reduction(+:s)\n"
    "  for (int i = 0; i < x; i++) s += i;\n"
    "  return (int)s;\n"
    "}\n"
)

#: memoized toolchain probe: {'cc': path, 'flags': [...], 'why': str}
_toolchain: Optional[Dict] = None
#: dlopen cache: .so path -> ctypes.CDLL
_dll_cache: Dict[str, ctypes.CDLL] = {}


def build_dir() -> Path:
    """Directory for compiled shared objects (content-addressed, so
    identical generated source is never compiled twice). Override with
    ``REPRO_CBUILD_DIR``."""
    env = os.environ.get("REPRO_CBUILD_DIR", "").strip()
    if env:
        p = Path(env)
    else:
        cache = os.environ.get("XDG_CACHE_HOME", "").strip()
        base = Path(cache) if cache else Path.home() / ".cache"
        p = base / "repro" / "cbuild"
    try:
        p.mkdir(parents=True, exist_ok=True)
        return p
    except OSError:
        fallback = Path(tempfile.gettempdir()) / "repro-cbuild"
        fallback.mkdir(parents=True, exist_ok=True)
        return fallback


def _find_compiler() -> Optional[str]:
    for cand in (os.environ.get("CC", "").strip() or None, "cc", "gcc",
                 "clang"):
        if cand:
            path = shutil.which(cand)
            if path:
                return path
    return None


def _try_compile(cc: str, flags: List[str], src: Path, out: Path) -> bool:
    try:
        proc = subprocess.run(
            [cc, *flags, str(src), "-o", str(out), "-lm"],
            capture_output=True, timeout=120,
        )
    except (OSError, subprocess.TimeoutExpired):
        return False
    return proc.returncode == 0 and out.exists()


def _probe_toolchain() -> Dict:
    """Find a compiler and the widest flag set it accepts (memoized)."""
    global _toolchain
    if _toolchain is not None:
        return _toolchain
    cc = _find_compiler()
    if cc is None:
        _toolchain = {"cc": None, "flags": [],
                      "why": "no C compiler found ($CC, cc, gcc, clang)"}
        return _toolchain
    with tempfile.TemporaryDirectory(prefix="repro-ccheck-") as td:
        src = Path(td) / "probe.c"
        src.write_text(_PROBE_SRC)
        # drop optional flags one at a time until a combination works
        for n_extra in range(len(_EXTRA_FLAGS), -1, -1):
            flags = _BASE_FLAGS + _EXTRA_FLAGS[:n_extra]
            if _try_compile(cc, flags, src, Path(td) / f"probe{n_extra}.so"):
                _toolchain = {"cc": cc, "flags": flags, "why": ""}
                return _toolchain
    _toolchain = {"cc": cc, "flags": [],
                  "why": f"{cc} failed to build a trivial shared object"}
    return _toolchain


def have_c_toolchain() -> bool:
    """True when a compiler capable of building our kernels is present."""
    return _probe_toolchain()["cc"] is not None and not _probe_toolchain()["why"]


def toolchain_error() -> str:
    """Human-readable reason :func:`have_c_toolchain` returned False."""
    info = _probe_toolchain()
    return info["why"] or "toolchain available"


def compile_shared_object(source: str) -> str:
    """Compile generated C ``source`` to a shared object; returns its path.

    Builds are content-addressed on (source, compiler, flags): recompiling
    an identical program — e.g. a cache thaw, or the second oracle run of
    a determinism check — reuses the existing ``.so`` byte-for-byte.
    """
    info = _probe_toolchain()
    if not info["cc"] or info["why"]:
        raise CBackendUnavailable(
            f"C backend unavailable: {toolchain_error()}"
        )
    tag = hashlib.sha256(
        "\x00".join([source, info["cc"], " ".join(info["flags"])]).encode()
    ).hexdigest()[:24]
    d = build_dir()
    so = d / f"latte_{tag}.so"
    if so.exists():
        return str(so)
    csrc = d / f"latte_{tag}.c"
    csrc.write_text(source)
    tmp = d / f".latte_{tag}.{os.getpid()}.so"
    proc = subprocess.run(
        [info["cc"], *info["flags"], str(csrc), "-o", str(tmp), "-lm"],
        capture_output=True, timeout=300,
    )
    if proc.returncode != 0 or not tmp.exists():
        stderr = proc.stderr.decode(errors="replace")[-2000:]
        raise CBackendUnavailable(
            f"C backend build failed (source kept at {csrc}):\n{stderr}"
        )
    os.replace(tmp, so)  # atomic: concurrent builders converge
    return str(so)


#: memoized toolchain fingerprint (built on first use)
_fingerprint: Optional[str] = None


def toolchain_fingerprint() -> str:
    """A short stable identifier for the active (compiler, flags) pair.

    Cache entries that embed compiled shared-object bytes record this so
    a thaw on a different machine (or after a compiler upgrade) knows
    the bytes are foreign and falls back to recompiling from source.
    ``"none"`` when no toolchain is available.
    """
    global _fingerprint
    if _fingerprint is not None:
        return _fingerprint
    info = _probe_toolchain()
    if not info["cc"] or info["why"]:
        _fingerprint = "none"
        return _fingerprint
    try:
        proc = subprocess.run([info["cc"], "--version"],
                              capture_output=True, timeout=30)
        version = proc.stdout.decode(errors="replace").splitlines()[0]
    except (OSError, subprocess.TimeoutExpired, IndexError):
        version = "unknown"
    digest = hashlib.sha256(
        "\x00".join([version, " ".join(info["flags"])]).encode()
    ).hexdigest()[:16]
    _fingerprint = f"{Path(info['cc']).name}:{digest}"
    return _fingerprint


def shared_object_bytes(source: str) -> bytes:
    """The compiled shared object for ``source``, as bytes (building it
    first if this process has not yet). Used by the compile cache to
    embed the native artifact in an entry so warm boots skip ``cc``."""
    return Path(compile_shared_object(source)).read_bytes()


def install_shared_object(source: str, data: bytes) -> str:
    """Drop pre-built shared-object ``data`` at the content-addressed
    path :func:`compile_shared_object` would produce for ``source``;
    returns that path without ever invoking the compiler.

    The caller is responsible for checking
    :func:`toolchain_fingerprint` matches the fingerprint recorded when
    the bytes were built — foreign bytes belong to a different compiler
    and must be rebuilt from source instead.
    """
    info = _probe_toolchain()
    if not info["cc"] or info["why"]:
        raise CBackendUnavailable(
            f"C backend unavailable: {toolchain_error()}"
        )
    tag = hashlib.sha256(
        "\x00".join([source, info["cc"], " ".join(info["flags"])]).encode()
    ).hexdigest()[:24]
    d = build_dir()
    so = d / f"latte_{tag}.so"
    if so.exists():
        return str(so)
    csrc = d / f"latte_{tag}.c"
    if not csrc.exists():
        csrc.write_text(source)
    tmp = d / f".latte_{tag}.{os.getpid()}.so"
    tmp.write_bytes(data)
    os.replace(tmp, so)  # atomic: concurrent installers converge
    return str(so)


#: memoized cblas_sgemm lookup: None = not found, (addr, ilp64) = found;
#: the CDLL is pinned in _cblas_dll so the symbol address stays valid
_cblas_probed = False
_cblas_info: Optional[Tuple[int, int]] = None
_cblas_dll: Optional[ctypes.CDLL] = None


def _find_cblas() -> Optional[Tuple[int, int]]:
    """Locate a ``cblas_sgemm`` in the BLAS NumPy bundles (memoized).

    Returns ``(address, ilp64)`` or None. Packed GEMMs then run on the
    very library the NumPy backend's einsum/tensordot calls use — same
    kernels, same rounding — instead of the self-contained fallback.
    ``REPRO_C_NO_BLAS=1`` disables the lookup (fallback-kernel testing).
    """
    global _cblas_probed, _cblas_info, _cblas_dll
    if _cblas_probed:
        return _cblas_info
    _cblas_probed = True
    if os.environ.get("REPRO_C_NO_BLAS", "").strip():
        return None
    import glob

    libs_dir = Path(np.__file__).resolve().parent.parent / "numpy.libs"
    candidates = sorted(glob.glob(str(libs_dir / "*openblas*"))) + sorted(
        set(glob.glob(str(libs_dir / "*blas*")))
        - set(glob.glob(str(libs_dir / "*openblas*")))
    )
    for path in candidates:
        try:
            dll = ctypes.CDLL(path)
        except OSError:
            continue
        for sym, ilp64 in (("scipy_cblas_sgemm64_", 1),
                           ("cblas_sgemm64_", 1), ("cblas_sgemm", 0)):
            fn = getattr(dll, sym, None)
            if fn is not None:
                _cblas_dll = dll
                _cblas_info = (ctypes.cast(fn, ctypes.c_void_p).value,
                               ilp64)
                return _cblas_info
    return None


def _load(so_path: str) -> ctypes.CDLL:
    dll = _dll_cache.get(so_path)
    if dll is None:
        dll = ctypes.CDLL(so_path)
        setter = getattr(dll, "latte_set_sgemm", None)
        if setter is not None:
            info = _find_cblas()
            if info is not None:
                setter.argtypes = [ctypes.c_void_p, ctypes.c_int]
                setter.restype = None
                setter(ctypes.c_void_p(info[0]), ctypes.c_int(info[1]))
        _dll_cache[so_path] = dll
    return dll


# ---------------------------------------------------------------------------
# Native backend: expression lowering
# ---------------------------------------------------------------------------

_CMP = {"==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: value-context intrinsics -> C spelling (all double-precision)
_C_FUNCS = {
    "exp": "exp", "log": "log", "sqrt": "sqrt", "tanh": "tanh",
    "abs": "fabs", "sigmoid": "_sigmoid",
}


def _int_const(e: Const) -> int:
    v = e.value
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        raise _Unlowerable(f"non-numeric index constant {v!r}")
    if isinstance(v, float):
        if not v.is_integer():
            raise _Unlowerable(f"fractional index constant {v!r}")
        v = int(v)
    return v


def _ri(e) -> str:
    """Render an integer-context expression (indices, loop bounds)."""
    if isinstance(e, Const):
        return f"{_int_const(e)}LL"
    if isinstance(e, Var):
        return e.name
    if isinstance(e, BinOp):
        a, b = _ri(e.left), _ri(e.right)
        if e.op in ("+", "-", "*"):
            return f"({a} {e.op} {b})"
        if e.op == "//":
            return f"_ll_fdiv({a}, {b})"
        if e.op == "%":
            return f"_ll_fmod({a}, {b})"
        raise _Unlowerable(f"integer op {e.op!r}")
    if isinstance(e, UnaryOp) and e.op == "-":
        return f"(-{_ri(e.operand)})"
    if isinstance(e, Call) and e.func in ("min", "max") and len(e.args) >= 2:
        fn = "_ll_min" if e.func == "min" else "_ll_max"
        out = _ri(e.args[0])
        for arg in e.args[1:]:
            out = f"{fn}({out}, {_ri(arg)})"
        return out
    raise _Unlowerable(f"index expression {type(e).__name__}")


def _strides(shape: Tuple[int, ...]) -> List[int]:
    out, acc = [], 1
    for d in reversed(shape):
        out.append(acc)
        acc *= d
    return list(reversed(out))


class _Frame:
    """Per-step lowering context: buffer shapes and touched-buffer set."""

    def __init__(self, shapes: Dict[str, Tuple[int, ...]]):
        self.shapes = shapes
        self.used: set = set()

    def flat(self, buffer: str, index_exprs: List[str]) -> str:
        """Row-major flat offset of one element, strides baked in."""
        shape = self.shapes.get(buffer)
        if shape is None:
            raise _Unlowerable(f"buffer {buffer!r} not in plan")
        if buffer in _C_RESERVED or not buffer.isidentifier():
            raise _Unlowerable(f"buffer name {buffer!r} not a C identifier")
        if len(index_exprs) != len(shape):
            raise _Unlowerable(
                f"{buffer}: rank mismatch ({len(index_exprs)} indices, "
                f"shape {shape})"
            )
        self.used.add(buffer)
        terms = [
            ix if st == 1 else f"({ix}) * {st}LL"
            for ix, st in zip(index_exprs, _strides(shape))
        ]
        return " + ".join(terms) or "0"

    def load(self, ref: Index) -> str:
        idx = [_ri(ix) for ix in ref.indices]
        return f"(double){ref.buffer}[{self.flat(ref.buffer, idx)}]"


def _rv(e, fr: _Frame) -> str:
    """Render a value-context expression: computed in double precision."""
    if isinstance(e, Const):
        v = e.value
        if isinstance(v, bool):
            return "1.0" if v else "0.0"
        if isinstance(v, int):
            return f"{v}.0"
        if isinstance(v, float):
            if v != v:
                return "NAN"
            if v == float("inf"):
                return "INFINITY"
            if v == float("-inf"):
                return "(-INFINITY)"
            return repr(v)
        raise _Unlowerable(f"constant {v!r}")
    if isinstance(e, Var):
        return f"(double){e.name}"
    if isinstance(e, Index):
        return fr.load(e)
    if isinstance(e, BinOp):
        a, b = _rv(e.left, fr), _rv(e.right, fr)
        if e.op in ("+", "-", "*", "/"):
            return f"({a} {e.op} {b})"
        if e.op == "//":
            return f"floor({a} / {b})"
        if e.op == "%":
            return f"_py_fmod({a}, {b})"
        if e.op == "**":
            return f"pow({a}, {b})"
        raise _Unlowerable(f"value op {e.op!r}")
    if isinstance(e, UnaryOp) and e.op == "-":
        return f"(-{_rv(e.operand, fr)})"
    if isinstance(e, Compare):
        op = _CMP.get(e.op)
        if op is None:
            raise _Unlowerable(f"comparison {e.op!r}")
        return f"({_rv(e.left, fr)} {op} {_rv(e.right, fr)})"
    if isinstance(e, Call):
        if e.func == "where" and len(e.args) == 3:
            c, a, b = (_rv(x, fr) for x in e.args)
            return f"(({c}) ? ({a}) : ({b}))"
        if e.func in ("min", "max") and len(e.args) >= 2:
            fn = "_d_min" if e.func == "min" else "_d_max"
            out = _rv(e.args[0], fr)
            for arg in e.args[1:]:
                out = f"{fn}({out}, {_rv(arg, fr)})"
            return out
        fn = _C_FUNCS.get(e.func)
        if fn is None or len(e.args) != 1:
            raise _Unlowerable(f"call {e.func!r}/{len(e.args)}")
        return f"{fn}({_rv(e.args[0], fr)})"
    raise _Unlowerable(f"value expression {type(e).__name__}")


# ---------------------------------------------------------------------------
# Native backend: statement and step lowering
# ---------------------------------------------------------------------------

def _open_loop(sp, lines: List[str], depth: int, pragma: str = "") -> int:
    pad = "  " * depth
    if pragma:
        lines.append(f"{pad}{pragma}")
    lines.append(
        f"{pad}for (long long {sp.var} = {_ri(sp.start)}; "
        f"{sp.var} < {_ri(sp.stop)}; {sp.var}++) {{"
    )
    return depth + 1


def _close_loops(lines: List[str], depth: int, down_to: int) -> None:
    for d in range(depth - 1, down_to - 1, -1):
        lines.append("  " * d + "}")


_PAR_PRAGMA = (
    "#pragma omp parallel for schedule(static) "
    "num_threads((int)_omp) if (_omp > 1)"
)


def _target_disjoint_vars(target: Index) -> set:
    """Loop vars the target's indices scalar-depend on: iterations of
    such a loop write disjoint elements, so it can be parallelized."""
    from repro.ir import free_vars, walk_exprs

    out: set = set()
    for ix in target.indices:
        if any(isinstance(e, Index) for e in walk_exprs(ix)):
            return set()  # indirect target: rows may collide
        out |= free_vars(ix)
    return out


def _emit_assign(unit: LoopUnit, fr: _Frame, lines: List[str],
                 depth: int) -> None:
    stmt = unit.stmt
    tgt = stmt.target
    if not isinstance(tgt, Index):
        raise _Unlowerable("non-buffer assignment target")
    if any(isinstance(ix, (SliceExpr,)) for ix in tgt.indices):
        raise _Unlowerable("sliced assignment target")
    disjoint = _target_disjoint_vars(tgt)
    top = depth
    for i, sp in enumerate(unit.loops):
        pragma = _PAR_PRAGMA if (i == 0 and sp.var in disjoint) else ""
        depth = _open_loop(sp, lines, depth, pragma)
    pad = "  " * depth
    idx = [_ri(ix) for ix in tgt.indices]
    ref = f"{tgt.buffer}[{fr.flat(tgt.buffer, idx)}]"
    rhs = _rv(stmt.value, fr)
    if stmt.reduce is None:
        lines.append(f"{pad}{ref} = (float)({rhs});")
    elif stmt.reduce == "add":
        lines.append(f"{pad}{ref} = (float)((double){ref} + {rhs});")
    elif stmt.reduce == "mul":
        lines.append(f"{pad}{ref} = (float)((double){ref} * {rhs});")
    elif stmt.reduce in ("max", "min"):
        cmp = ">=" if stmt.reduce == "max" else "<="
        lines.append(f"{pad}{{ double _v = {rhs}; "
                     f"double _t = (double){ref}; "
                     f"{ref} = (float)((_t {cmp} _v) ? _t : _v); }}")
    else:
        raise _Unlowerable(f"reduce {stmt.reduce!r}")
    _close_loops(lines, depth, top)


def _classify_gemm(stmt: Gemm):
    """Shared Gemm analysis for both lowering strategies.

    ``var_axes`` records, for every matched loop variable, which
    (operand, axis) pairs it was sliced into; the slice expressions on
    those axes carry the variable's absolute iteration range — including
    tile sub-ranges after tiling and ``_b0/_b1`` after shard
    parameterization. Returns ``(refs, owner, ranges, slices, free,
    contract)`` where ``free`` letters index the output, ``contract``
    letters are summed over, and ``slices`` keeps each letter's
    SliceExpr for compile-time extent analysis.
    """
    if not stmt.var_axes or not stmt.var_loops:
        raise _Unlowerable("gemm without matched loop metadata")
    refs = {"a": stmt.a, "b": stmt.b, "c": stmt.c}
    owner: Dict[Tuple[str, int], str] = {}
    ranges: Dict[str, Tuple[str, str]] = {}
    slices: Dict[str, SliceExpr] = {}
    free: List[str] = []
    contract: List[str] = []
    for var in stmt.var_loops:
        entries = stmt.var_axes.get(var)
        if not entries:
            raise _Unlowerable(f"gemm var {var!r} lost its axes")
        rk, ax = entries[0]
        sl = refs[rk].indices[ax]
        if not isinstance(sl, SliceExpr):
            raise _Unlowerable(f"gemm var {var!r}: axis not a slice")
        step = sl.step
        if not (isinstance(step, Const) and step.value == 1):
            raise _Unlowerable("strided gemm slice")
        ranges[var] = (_ri(sl.start), _ri(sl.stop))
        slices[var] = sl
        for rk2, ax2 in entries:
            owner[(rk2, ax2)] = var
        if any(k == "c" for k, _ in entries):
            free.append(var)
        else:
            contract.append(var)
    return refs, owner, ranges, slices, free, contract


def _gemm_flat(refs, owner, fr: _Frame, rk: str) -> str:
    """Flat offset of operand ``rk`` with matched axes replaced by their
    loop variables and remaining axes rendered as scalar expressions."""
    ref = refs[rk]
    idx = []
    for ax, ix in enumerate(ref.indices):
        var = owner.get((rk, ax))
        if var is not None:
            idx.append(var)
        elif isinstance(ix, (SliceExpr,)):
            raise _Unlowerable("unmatched gemm slice axis")
        else:
            idx.append(_ri(ix))
    return fr.flat(ref.buffer, idx)


def _gemm_packable(stmt: Gemm, free: List[str],
                   contract: List[str]) -> bool:
    """True when the Gemm maps onto one packed row-major sgemm call:
    there is a real contraction and no output letter spans both
    operands (a letter in A and B and C is a batched-diagonal pattern
    sgemm cannot express)."""
    if not contract:
        return False
    for var in free:
        kinds = {rk for rk, _ in stmt.var_axes[var]}
        if "a" in kinds and "b" in kinds:
            return False
    return True


def _int_extent(sl: SliceExpr) -> Optional[int]:
    """Compile-time extent of a matched slice, or None when the bounds
    are runtime expressions (shard/tile sub-ranges)."""
    if isinstance(sl.start, Const) and isinstance(sl.stop, Const):
        return _int_const(sl.stop) - _int_const(sl.start)
    return None


def _rm_layout(outer: List[str], inner: List[str], stride: Dict[str, int],
               slices) -> Optional[int]:
    """Leading dimension when letters read as ``[outer..., inner...]``
    match the operand's row-major layout — the inner letters form one
    contiguous mixed-radix index and the outer letters advance by a
    single stride — else None. Inner extents (and all outer extents but
    the first) must be compile-time."""
    width = 1
    for v in inner:
        ex = _int_extent(slices[v])
        if ex is None:
            return None
        width *= ex
    acc = 1
    for v in reversed(inner):
        if stride[v] != acc:
            return None
        acc *= _int_extent(slices[v])
    if not outer:
        return width
    ld = stride[outer[-1]]
    if ld < width:
        return None
    for j in range(len(outer) - 2, -1, -1):
        ex = _int_extent(slices[outer[j + 1]])
        if ex is None or stride[outer[j]] != stride[outer[j + 1]] * ex:
            return None
    return ld


def _try_passthrough(rk: str, rows: List[str], cols: List[str], refs,
                     owner, slices, fr: _Frame, allow_trans: bool = True):
    """Can operand ``rk`` be handed to sgemm in place?

    True when its matched letters map onto the buffer's row-major
    layout either as ``[rows..., cols...]`` (NoTrans) or as
    ``[cols..., rows...]`` (Trans, for A/B only — cblas cannot
    transpose C). Returns ``(base_expr, ld_expr, trans)`` — a
    pointer-offset expression (letters pinned at their lower bounds),
    the leading dimension, and the transpose flag — or None when the
    operand must be gathered into scratch (replicated letters, strided
    or scattered layouts, runtime inner extents).
    """
    from repro.ir import free_vars

    ref = refs[rk]
    shape = fr.shapes.get(ref.buffer)
    if shape is None or len(shape) != len(ref.indices):
        return None
    strides = _strides(shape)
    axes_of: Dict[str, List[int]] = {}
    for (rk2, ax), v in owner.items():
        if rk2 == rk:
            axes_of.setdefault(v, []).append(ax)
    matched = set(owner.values())
    for v in rows + cols:
        if len(axes_of.get(v, [])) != 1:
            return None  # replicated (broadcast) or diagonal letter
    for ax, ix in enumerate(ref.indices):
        if owner.get((rk, ax)) is None:
            if isinstance(ix, SliceExpr):
                return None
            try:
                if free_vars(ix) & matched:
                    return None
            except Exception:
                return None
    stride = {v: strides[axes_of[v][0]] for v in rows + cols}
    ld = _rm_layout(rows, cols, stride, slices)
    trans = 0
    if ld is None and allow_trans:
        ld = _rm_layout(cols, rows, stride, slices)
        trans = 1
    if ld is None:
        return None
    idx = []
    for ax, ix in enumerate(ref.indices):
        v = owner.get((rk, ax))
        idx.append(f"_lo_{v}" if v is not None else _ri(ix))
    base = fr.flat(ref.buffer, idx)
    return f"{ref.buffer} + ({base})", f"{ld}LL", trans


def _emit_gemm_packed(unit: LoopUnit, fr: _Frame, lines: List[str],
                      depth: int, refs, owner, ranges, slices,
                      free: List[str], contract: List[str]) -> None:
    """Lower a Gemm as (gather) → ``_latte_gemm_rm`` → (scatter).

    Operands already laid out row-major over their letters are passed
    to sgemm in place (pointer + leading dimension); the rest are
    gathered into contiguous scratch first — an O(M·K + K·N + M·N)
    copy, negligible next to the O(M·N·K) contraction. The multiply
    itself then runs as one library sgemm — the exact BLAS NumPy uses,
    injected at load time — or the blocked fallback when no BLAS is
    present. Should scratch allocation ever fail, the strided loop
    nest runs in place.
    """
    stmt = unit.stmt
    m_vars = [v for v in free
              if "b" not in {rk for rk, _ in stmt.var_axes[v]}]
    n_vars = [v for v in free if v not in m_vars]

    def extent_product(vars_: List[str]) -> str:
        return " * ".join(f"_ex_{v}" for v in vars_) if vars_ else "1LL"

    def lin(vars_: List[str]) -> str:
        if not vars_:
            return "0"
        expr = f"({vars_[0]} - _lo_{vars_[0]})"
        for v in vars_[1:]:
            expr = f"({expr} * _ex_{v} + ({v} - _lo_{v}))"
        return expr

    def open_var_loops(vars_: List[str], d: int) -> int:
        for v in vars_:
            lines.append(f"{'  ' * d}for (long long {v} = _lo_{v}; "
                         f"{v} < _lo_{v} + _ex_{v}; {v}++) {{")
            d += 1
        return d

    layout = {"a": (m_vars, contract, "_K"), "b": (contract, n_vars, "_N"),
              "c": (m_vars, n_vars, "_N")}
    direct = {rk: _try_passthrough(rk, rows, cols, refs, owner, slices,
                                   fr, allow_trans=(rk != "c"))
              for rk, (rows, cols, _) in layout.items()}
    packed = [rk for rk in ("a", "b", "c") if direct[rk] is None]

    top = depth
    # the unit's own loops (e.g. a tile loop the tiler pushed inside)
    for sp in unit.loops:
        depth = _open_loop(sp, lines, depth)
    pad = "  " * depth
    lines.append(pad + "{")
    depth += 1
    pad = "  " * depth
    for v in m_vars + n_vars + contract:
        lo, hi = ranges[v]
        lines.append(f"{pad}const long long _lo_{v} = {lo};")
        lines.append(f"{pad}const long long _ex_{v} = ({hi}) - ({lo});")
    lines.append(f"{pad}const long long _M = {extent_product(m_vars)};")
    lines.append(f"{pad}const long long _N = {extent_product(n_vars)};")
    lines.append(f"{pad}const long long _K = {extent_product(contract)};")
    sizes = {"a": "_M * _K", "b": "_K * _N", "c": "_M * _N"}
    for rk in packed:
        lines.append(
            f"{pad}float *_p{rk} = "
            f"(float *)malloc((size_t)({sizes[rk]}) * sizeof(float));")
    args = {}
    for rk in ("a", "b", "c"):
        if direct[rk] is not None:
            base, ld, trans = direct[rk]
            args[rk] = (f"({base})", ld, trans)
        else:
            args[rk] = (f"_p{rk}", layout[rk][2], 0)
    if packed:
        guard = " && ".join(f"_p{rk}" for rk in packed)
        lines.append(f"{pad}if ({guard}) {{")
        body = depth + 1
    else:
        body = depth
    bpad = "  " * body

    def gather(rk: str) -> None:
        rows, cols, ldname = layout[rk]
        d = open_var_loops(rows + cols, body)
        lines.append(
            f"{'  ' * d}_p{rk}[{lin(rows)} * {ldname} + {lin(cols)}] = "
            f"{refs[rk].buffer}[{_gemm_flat(refs, owner, fr, rk)}];")
        _close_loops(lines, d, body)

    for rk in ("a", "b"):
        if direct[rk] is None:
            gather(rk)
    if direct["c"] is None and stmt.accumulate:
        gather("c")
    lines.append(
        f"{bpad}_latte_gemm_rm(_M, _N, _K, {args['a'][0]}, {args['a'][1]},"
        f" {args['a'][2]}, {args['b'][0]}, {args['b'][1]},"
        f" {args['b'][2]}, {args['c'][0]}, {args['c'][1]},"
        f" {1 if stmt.accumulate else 0}, _omp);")
    if direct["c"] is None:
        d = open_var_loops(m_vars + n_vars, body)
        lines.append(
            f"{'  ' * d}{stmt.c.buffer}"
            f"[{_gemm_flat(refs, owner, fr, 'c')}] = "
            f"_pc[{lin(m_vars)} * _N + {lin(n_vars)}];")
        _close_loops(lines, d, body)
    if packed:
        lines.append(f"{pad}}} else {{")
        _emit_gemm_loop_body(unit, fr, lines, depth + 1, refs, owner,
                             ranges, free, contract)
        lines.append(f"{pad}}}")
        frees = " ".join(f"free(_p{rk});" for rk in packed)
        lines.append(f"{pad}{frees}")
    depth -= 1
    lines.append("  " * depth + "}")
    _close_loops(lines, depth, top)


def _emit_gemm(unit: LoopUnit, fr: _Frame, lines: List[str],
               depth: int) -> None:
    """Lower a pattern-matched Gemm: packed-sgemm form when the letter
    structure allows it, strided loop nest otherwise."""
    stmt = unit.stmt
    refs, owner, ranges, slices, free, contract = _classify_gemm(stmt)
    fr.used.add(stmt.c.buffer)
    if _gemm_packable(stmt, free, contract):
        _emit_gemm_packed(unit, fr, lines, depth, refs, owner, ranges,
                          slices, free, contract)
        return
    top = depth
    for sp in unit.loops:
        depth = _open_loop(sp, lines, depth)
    _emit_gemm_loop_body(unit, fr, lines, depth, refs, owner, ranges,
                         free, contract)
    _close_loops(lines, depth, top)


def _emit_gemm_loop_body(unit: LoopUnit, fr: _Frame, lines: List[str],
                         depth: int, refs, owner, ranges,
                         free: List[str], contract: List[str]) -> None:
    """The strided loop-nest Gemm lowering (no packing): free letters
    outer, contraction letters inner around a double accumulator. Used
    for letter structures sgemm cannot express and as the in-place
    branch when scratch allocation fails."""
    stmt = unit.stmt

    def flat(rk: str) -> str:
        return _gemm_flat(refs, owner, fr, rk)

    top = depth
    for i, var in enumerate(free):
        lo, hi = ranges[var]
        pragma = _PAR_PRAGMA if i == 0 else ""
        if pragma:
            lines.append("  " * depth + pragma)
        lines.append(
            f"{'  ' * depth}for (long long {var} = {lo}; "
            f"{var} < {hi}; {var}++) {{"
        )
        depth += 1
    pad = "  " * depth
    a, b = f"(double){stmt.a.buffer}[{flat('a')}]", \
        f"(double){stmt.b.buffer}[{flat('b')}]"
    fr.used.add(stmt.c.buffer)
    if contract:
        lines.append(f"{pad}double _acc = 0.0;")
        inner = depth
        for i, var in enumerate(contract):
            lo, hi = ranges[var]
            if i == len(contract) - 1:
                lines.append("  " * inner + "#pragma omp simd reduction(+:_acc)")
            lines.append(
                f"{'  ' * inner}for (long long {var} = {lo}; "
                f"{var} < {hi}; {var}++) {{"
            )
            inner += 1
        lines.append("  " * inner + f"_acc += {a} * {b};")
        _close_loops(lines, inner, depth)
    else:
        lines.append(f"{pad}double _acc = {a} * {b};")
    c = f"{stmt.c.buffer}[{flat('c')}]"
    if stmt.accumulate:
        lines.append(f"{pad}{c} = (float)((double){c} + _acc);")
    else:
        lines.append(f"{pad}{c} = (float)_acc;")
    _close_loops(lines, depth, top)


def _emit_unit_c(unit: LoopUnit, fr: _Frame, lines: List[str],
                 depth: int) -> None:
    stmt = unit.stmt
    if isinstance(stmt, ExternOp):
        raise _Unlowerable(f"extern closure {stmt.fn_key!r}")
    if isinstance(stmt, Gemm):
        _emit_gemm(unit, fr, lines, depth)
    elif isinstance(stmt, Assign):
        _emit_assign(unit, fr, lines, depth)
    else:
        raise _Unlowerable(f"statement {type(stmt).__name__}")


def env_shape(plan, spec, time_steps: int) -> Tuple[int, ...]:
    """Shape of the array a step function sees in its env for ``spec`` —
    the allocated shape minus the leading time axis the executor strips
    for time-unrolled nets (it binds per-``t`` views), with alias
    reshapes applied (mirrors ``buffers.allocate`` + ``_base_env``)."""
    from repro.synthesis.liveness import full_shape

    fs = full_shape(plan, spec)
    if spec.alias_reshape is not None:
        n_lead = max(len(fs) - len(spec.shape), 0)
        fs = fs[:n_lead] + tuple(spec.alias_reshape)
    if time_steps > 1 and spec.batched and spec.array is None:
        fs = fs[1:]
    return tuple(int(d) for d in fs)


def _emit_step(group: FusedGroup, name: str,
               shapes: Dict[str, Tuple[int, ...]],
               lines_out: List[str]) -> List[str]:
    """Emit one step function; returns its buffer-argument name order.

    Raises :class:`_Unlowerable` (leaving ``lines_out`` untouched) when
    any member unit cannot be expressed.
    """
    from repro.codegen.python_backend import _shard_unit

    units = ([_shard_unit(u) for u in group.units]
             if group.shard is not None else list(group.units))
    fr = _Frame(shapes)
    body: List[str] = []
    depth = 1
    if group.tile_loop is not None:
        depth = _open_loop(group.tile_loop, body, depth)
    for unit in units:
        _emit_unit_c(unit, fr, body, depth)
    if group.tile_loop is not None:
        _close_loops(body, depth, 1)
    buffers = sorted(fr.used)
    params = ", ".join([f"float* {b}" for b in buffers]
                       + ["long long _b0", "long long _b1",
                          "long long _omp"])
    lines_out.append(f"/* {group.label} */")
    lines_out.append(f"void {name}({params}) {{")
    lines_out.append("  (void)_b0; (void)_b1; (void)_omp;")
    lines_out.extend(body)
    lines_out.append("}")
    lines_out.append("")
    return buffers


_C_PRELUDE = """\
/* Latte-generated native program. Machine-written; see
 * repro.codegen.c_backend. Compiled to a shared object and driven
 * through ctypes; buffers are NumPy-owned float32 arrays passed as raw
 * pointers. */
#include <math.h>
#include <stdlib.h>

/* Optional BLAS hook: the runtime injects a cblas_sgemm address (from
 * the BLAS NumPy itself bundles) via latte_set_sgemm after dlopen, so
 * packed GEMMs run on the exact library the NumPy backend uses. With
 * no pointer installed the blocked fallback below keeps every program
 * self-contained. ilp64 selects the 64-bit-integer cblas ABI. */
static void *_latte_sgemm_ptr = 0;
static int _latte_sgemm_ilp64 = 1;
void latte_set_sgemm(void *p, int ilp64) {
  _latte_sgemm_ptr = p;
  _latte_sgemm_ilp64 = ilp64;
}
typedef void (*_latte_sgemm64_fn)(
    int order, int transa, int transb, long long m, long long n,
    long long k, float alpha, const float *a, long long lda,
    const float *b, long long ldb, float beta, float *c, long long ldc);
typedef void (*_latte_sgemm32_fn)(
    int order, int transa, int transb, int m, int n, int k, float alpha,
    const float *a, int lda, const float *b, int ldb, float beta,
    float *c, int ldc);

/* C[M,N] (+)= op(A)[M,K] @ op(B)[K,N], row-major with leading
 * dimensions (operands may be in-place views of larger buffers; ta/tb
 * select the transposed storage orientation).
 * 101/111/112 = CblasRowMajor/CblasNoTrans/CblasTrans. */
static void _latte_gemm_rm(long long M, long long N, long long K,
                           const float *A, long long lda, int ta,
                           const float *B, long long ldb, int tb,
                           float *C, long long ldc,
                           int accumulate, long long nthreads) {
  float beta = accumulate ? 1.0f : 0.0f;
  if (_latte_sgemm_ptr) {
    if (_latte_sgemm_ilp64)
      ((_latte_sgemm64_fn)_latte_sgemm_ptr)(
          101, ta ? 112 : 111, tb ? 112 : 111, M, N, K, 1.0f, A, lda, B,
          ldb, beta, C, ldc);
    else
      ((_latte_sgemm32_fn)_latte_sgemm_ptr)(
          101, ta ? 112 : 111, tb ? 112 : 111, (int)M, (int)N, (int)K,
          1.0f, A, (int)lda, B, (int)ldb, beta, C, (int)ldc);
    return;
  }
  #pragma omp parallel for schedule(static) \
      num_threads((int)nthreads) if (nthreads > 1)
  for (long long i = 0; i < M; i++) {
    for (long long j = 0; j < N; j++) {
      double acc = accumulate ? (double)C[i * ldc + j] : 0.0;
      #pragma omp simd reduction(+:acc)
      for (long long p = 0; p < K; p++)
        acc += (double)A[ta ? p * lda + i : i * lda + p] *
               (double)B[tb ? j * ldb + p : p * ldb + j];
      C[i * ldc + j] = (float)acc;
    }
  }
}

static inline double _sigmoid(double x) { return 1.0 / (1.0 + exp(-x)); }
static inline double _d_max(double a, double b) { return a >= b ? a : b; }
static inline double _d_min(double a, double b) { return a <= b ? a : b; }
static inline double _py_fmod(double a, double b) {
  double r = fmod(a, b);
  return (r != 0.0 && ((r < 0.0) != (b < 0.0))) ? r + b : r;
}
static inline long long _ll_min(long long a, long long b) {
  return a < b ? a : b;
}
static inline long long _ll_max(long long a, long long b) {
  return a > b ? a : b;
}
static inline long long _ll_fdiv(long long a, long long b) {
  long long q = a / b;
  return ((a % b) != 0 && ((a < 0) != (b < 0))) ? q - 1 : q;
}
static inline long long _ll_fmod(long long a, long long b) {
  long long r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}

"""


def emit_native_program(
    compiled, fwd_items, bwd_items, plan, time_steps: int
) -> Tuple[str, Dict[str, List[str]], Dict[str, str]]:
    """Lower every lowerable task step of a compiled program to C.

    Returns ``(source, steps, skipped)`` where ``steps`` maps each native
    step name to its buffer-argument order (the rebuild recipe stored in
    compile-cache entries) and ``skipped`` maps each Python-retained step
    name to the reason it stayed interpreted.
    """
    shapes = {
        name: env_shape(plan, spec, time_steps)
        for name, spec in plan.buffers.items()
    }
    lines: List[str] = []
    steps: Dict[str, List[str]] = {}
    skipped: Dict[str, str] = {}
    for step_list, items in ((compiled.forward, fwd_items),
                             (compiled.backward, bwd_items)):
        groups = [it for it in items if isinstance(it, FusedGroup)]
        task_steps = [s for s in step_list if s.kind == "task"]
        assert len(groups) == len(task_steps), "schedule/steps drifted"
        for step, group in zip(task_steps, groups):
            try:
                steps[step.name] = _emit_step(
                    group, step.name, shapes, lines
                )
            except _Unlowerable as exc:
                skipped[step.name] = str(exc)
    return _C_PRELUDE + "\n".join(lines), steps, skipped


# ---------------------------------------------------------------------------
# Native backend: ctypes binding
# ---------------------------------------------------------------------------

def _make_step_fn(cfn, names: Tuple[str, ...], batch: int, omp: int):
    """Wrap one exported kernel as an executor-compatible step function.

    The wrapper has the exact calling convention of a Python-backend step
    — ``fn(env, rt)`` plain, ``fn(env, rt, _b0, _b1)`` sharded — and
    fetches each buffer pointer from ``env`` *per call*, so per-``t``
    views, recurrent zero views, private-accumulator swaps, and
    ``rebind_buffer`` all work with zero executor changes.
    """
    def step(env, rt, _b0=0, _b1=batch):
        args = []
        for n in names:
            a = env[n]
            if a.dtype is not _F32 and a.dtype != _F32:
                raise TypeError(
                    f"C backend: buffer {n!r} must be float32, got {a.dtype}"
                )
            if not a.flags["C_CONTIGUOUS"]:
                raise TypeError(
                    f"C backend: buffer {n!r} must be C-contiguous "
                    "(rebind_buffer with a contiguous array)"
                )
            args.append(a.ctypes.data)
        cfn(*args, _b0, _b1, omp)

    step._latte_native = True
    return step


def omp_threads_for(compiled, batch: int, num_threads: int) -> int:
    """In-kernel OpenMP thread count: ``num_threads`` when the executor
    runs steps whole, 1 when it splits batches into thread shards itself
    (mirrors the executor's ``num_shards`` rule; avoids oversubscription
    and keeps sharded runs comparable with the Python backend)."""
    shardable = any(
        s.shardable for s in compiled.forward + compiled.backward
    )
    num_shards = min(num_threads, batch) if shardable else 1
    return num_threads if num_shards == 1 else 1


def bind_steps(so_path: str, steps: Dict[str, List[str]], batch: int,
               omp: int) -> Dict[str, object]:
    """Load a compiled program and wrap its kernels as step functions."""
    dll = _load(so_path)
    fns: Dict[str, object] = {}
    for name, bufnames in steps.items():
        cfn = getattr(dll, name)
        cfn.restype = None
        cfn.argtypes = (
            [ctypes.c_void_p] * len(bufnames) + [ctypes.c_longlong] * 3
        )
        fns[name] = _make_step_fn(cfn, tuple(bufnames), batch, omp)
    return fns


def attach_native(compiled, fwd_items, bwd_items, plan, time_steps: int,
                  num_threads: int) -> None:
    """Compile a program's lowerable steps to native code and swap their
    step functions in place (the tentpole entry point, called by
    ``compile_net`` when ``options.backend == 'c'``).

    Extern-closure steps and anything the lowering rejects keep their
    Python functions; ``compiled.c_exec_source``/``c_steps`` record the
    native artifact + rebuild recipe for the compile cache, and
    ``c_skipped`` the per-step fallback reasons.
    """
    if not have_c_toolchain():
        raise CBackendUnavailable(
            f"backend='c' requested but {toolchain_error()}"
        )
    source, steps, skipped = emit_native_program(
        compiled, fwd_items, bwd_items, plan, time_steps
    )
    compiled.c_exec_source = source
    compiled.c_steps = steps
    compiled.c_skipped = skipped
    if not steps:
        return
    so_path = compile_shared_object(source)
    omp = omp_threads_for(compiled, plan.batch_size, num_threads)
    fns = bind_steps(so_path, steps, plan.batch_size, omp)
    for step in compiled.forward + compiled.backward:
        fn = fns.get(step.name)
        if fn is not None:
            step.fn = fn
