"""C++/OpenMP rendering of the optimized program.

The paper presents synthesized code as C++ with OpenMP pragmas and
simplified ``gemm`` calls (Figures 9, 10, 12). This backend renders the
*same* post-optimization schedule in that form — for inspection, golden
tests, and documentation. It is not executed; the executable backend is
:mod:`repro.codegen.python_backend`.
"""

from __future__ import annotations

from typing import List

from repro.ir import CommCall, For
from repro.ir.printer import to_c
from repro.synthesis.units import FusedGroup, unit_to_for_tree


def render_items(items, title: str = "") -> str:
    """Render a schedule (list of FusedGroup/CommCall) as C-like source."""
    out: List[str] = []
    if title:
        out.append(f"// === {title} ===")
    for item in items:
        if isinstance(item, CommCall):
            out.append(to_c(item))
            continue
        assert isinstance(item, FusedGroup)
        out.append(f"// {item.label}")
        trees = [unit_to_for_tree(u) for u in item.units]
        if item.tile_loop is not None:
            sp = item.tile_loop
            tree = For(
                sp.var,
                sp.start,
                sp.stop,
                trees,
                parallel=sp.parallel,
                collapse=sp.collapse,
                schedule=sp.schedule,
            )
            out.append(to_c(tree))
        else:
            out.extend(to_c(t) for t in trees)
    return "\n".join(out) + "\n"
