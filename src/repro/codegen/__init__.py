"""Code generation backends (executable NumPy, inspectable C++)."""

from repro.codegen.python_backend import CompiledProgram, Step, compile_items

__all__ = ["CompiledProgram", "Step", "compile_items"]
