"""Executable Python/NumPy backend.

Emits one Python function per schedule item (fused group), compiles the
whole module with ``compile()``/``exec``, and returns callables bound to
the runtime buffer table. This is the Python analogue of the paper's
pipeline where ParallelAccelerator.jl emits C++ that ICC compiles (§5.5):
our generated source is plain NumPy, with vectorization already performed
at the IR level by :mod:`repro.codegen.vectorize` and GEMMs lowered to
BLAS-backed ``np.einsum``.

The generated source is retained on the compiled program
(``CompiledProgram.source``) for inspection and testing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from dataclasses import replace as dc_replace
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.codegen.exprs import render, render_plain_index
from repro.codegen.vectorize import lower_unit_scalar, lower_unit_vector
from repro.ir import (
    Assign,
    CommCall,
    Expr,
    ExternOp,
    Gemm,
    Index,
    SliceExpr,
    Var,
    buffers_read,
    buffers_written,
    walk_exprs,
)
from repro.synthesis.lower import BATCH_VAR
from repro.synthesis.units import FusedGroup, LoopSpec, LoopUnit, ShardInfo

#: batch-bound parameters of shard-parameterized step functions
SHARD_LO, SHARD_HI = "_b0", "_b1"


@dataclass
class Step:
    """One executable step of the compiled program."""

    name: str
    kind: str  # 'task' | 'comm'
    fn: Optional[Callable] = None
    comm: Optional[CommCall] = None
    recurrent_reads: frozenset = frozenset()
    label: str = ""
    #: buffer names this step reads / writes (compile-time metadata for
    #: the tracer's bytes-touched accounting; externs report what they
    #: declare)
    reads: frozenset = frozenset()
    writes: frozenset = frozenset()
    #: multiply-add FLOPs of pattern-matched GEMMs in this step (2*M*N*K
    #: per Gemm, derived from the matched loop extents)
    flops: int = 0
    #: True when the step function takes ``(_b0, _b1)`` batch bounds and
    #: may be split into concurrent batch shards (see repro.optim.parallel)
    shardable: bool = False
    #: buffer name -> 'add' | 'store': batch-invariant accumulation
    #: targets the executor must privatize per shard and tree-reduce
    private_accums: Dict[str, str] = field(default_factory=dict)


@dataclass
class CompiledProgram:
    """Compiled forward/backward step lists plus the emitted source."""

    forward: List[Step]
    backward: List[Step]
    source: str
    closures: Dict[str, Callable]
    #: paper-style C++/OpenMP *rendering* (repro.codegen.c_backend
    #: .render_items) — inspection only, never compiled
    c_source: str = ""
    #: executable C program (backend='c'): the source actually compiled
    #: to a shared object, and per-native-step buffer-argument order —
    #: together the rebuild recipe the compile cache stores
    c_exec_source: str = ""
    c_steps: Dict[str, List[str]] = field(default_factory=dict)
    #: step name -> reason it kept its Python fn under backend='c'
    c_skipped: Dict[str, str] = field(default_factory=dict)


def _scalar_expr(e: Expr) -> str:
    return render(e, render_plain_index, vector=True)


def _collect_buffers(unit: LoopUnit) -> set:
    names = set()
    stmt = unit.stmt
    if isinstance(stmt, Assign):
        for e in walk_exprs(stmt):
            if isinstance(e, Index):
                names.add(e.buffer)
    elif isinstance(stmt, Gemm):
        for ref in (stmt.a, stmt.b, stmt.c):
            names.add(ref.buffer)
            for e in walk_exprs(ref):
                if isinstance(e, Index):
                    names.add(e.buffer)
    elif isinstance(stmt, ExternOp):
        pass  # externs receive the whole buffer dict
    return names


def _gemm_flops(gemm: Gemm) -> int:
    """2*M*N*K of a pattern-matched Gemm; 0 when extents are symbolic."""
    try:
        m, n, k = (int(x) for x in gemm.mnk)
    except (TypeError, ValueError):
        return 0
    return 2 * m * n * k


def _group_metadata(group: FusedGroup):
    """(reads, writes, flops) for one fused group's member statements."""
    reads, writes = set(), set()
    flops = 0
    for u in group.units:
        reads |= buffers_read(u.stmt)
        writes |= buffers_written(u.stmt)
        if isinstance(u.stmt, Gemm):
            flops += _gemm_flops(u.stmt)
    return frozenset(reads), frozenset(writes), flops


def _gemm_rhs(subscripts: str, a: str, b: str) -> str:
    """Lower a Gemm's einsum subscripts to a BLAS-backed call.

    Pure two-operand contractions (every output label comes from exactly
    one operand) become ``np.tensordot`` with compile-time axis lists and
    an output transpose view — this is the library-GEMM of §5.4.1, and
    measurably faster than generic einsum. Anything else (e.g. a label
    shared by both operands and the output) falls back to einsum.
    """
    ins, out = subscripts.split("->")
    a_subs, b_subs = ins.split(",")
    contracted = [ch for ch in a_subs if ch in b_subs and ch not in out]
    a_free = [ch for ch in a_subs if ch not in contracted]
    b_free = [ch for ch in b_subs if ch not in contracted]
    res = a_free + b_free
    pure = (
        sorted(res) == sorted(out)
        and all(ch not in b_subs or ch in contracted for ch in a_subs)
    )
    if not pure:
        return f"_np.einsum({subscripts!r}, {a}, {b}, optimize=True)"
    ax_a = tuple(a_subs.index(ch) for ch in contracted)
    ax_b = tuple(b_subs.index(ch) for ch in contracted)
    expr = f"_np.tensordot({a}, {b}, axes=({ax_a}, {ax_b}))"
    perm = tuple(res.index(ch) for ch in out)
    if perm != tuple(range(len(perm))):
        expr += f".transpose({perm})"
    return expr


def _emit_unit(unit: LoopUnit, vectorize: bool, indent: int, lines: List[str]):
    pad = "    " * indent
    stmt = unit.stmt
    if isinstance(stmt, ExternOp):
        lines.append(f"{pad}_CL[{stmt.fn_key!r}](B, rt)")
        return
    if isinstance(stmt, Gemm):
        for sp in unit.loops:
            lines.append(
                f"{pad}for {sp.var} in range({_scalar_expr(sp.start)}, "
                f"{_scalar_expr(sp.stop)}):"
            )
            pad += "    "
        a = render_plain_index(stmt.a)
        b = render_plain_index(stmt.b)
        c = render_plain_index(stmt.c)
        op = "+=" if stmt.accumulate else "="
        note = f"  # {stmt.note}" if stmt.note else ""
        rhs = _gemm_rhs(stmt.subscripts, a, b)
        lines.append(f"{pad}{c} {op} {rhs}{note}")
        return
    lowered = (lower_unit_vector if vectorize else lower_unit_scalar)(unit)
    for sp in lowered.scalar_loops:
        lines.append(
            f"{pad}for {sp.var} in range({_scalar_expr(sp.start)}, "
            f"{_scalar_expr(sp.stop)}):"
        )
        pad += "    "
    lines.append(f"{pad}{lowered.line}")


def _shard_unit(unit: LoopUnit) -> LoopUnit:
    """Rebuild a unit with its batch extent parameterized by
    ``(_b0, _b1)`` — batch loops get the shard bounds, and Gemm axes the
    pattern matcher consumed from the batch loop become partial slices
    (the same re-splitting mechanism the tiling pass uses). Originals are
    left untouched so the C rendering still shows full-batch loops.
    """
    loops = [
        dc_replace(sp, start=Var(SHARD_LO), stop=Var(SHARD_HI))
        if sp.role == "batch"
        else sp
        for sp in unit.loops
    ]
    stmt = unit.stmt
    if isinstance(stmt, Gemm) and BATCH_VAR in stmt.var_axes:
        shard_slice = SliceExpr(Var(SHARD_LO), Var(SHARD_HI))
        refs = {"a": stmt.a, "b": stmt.b, "c": stmt.c}
        for key, axis in stmt.var_axes[BATCH_VAR]:
            ref = refs[key]
            indices = list(ref.indices)
            indices[axis] = shard_slice
            refs[key] = Index(ref.buffer, tuple(indices))
        stmt = dc_replace(stmt, a=refs["a"], b=refs["b"], c=refs["c"])
    return LoopUnit(loops, stmt, unit.tags)


def _emit_group(
    group: FusedGroup, name: str, vectorize: bool, lines: List[str],
    shard: Optional[ShardInfo] = None,
) -> None:
    if shard is not None:
        lines.append(
            f"def {name}(B, rt, {SHARD_LO}=0, {SHARD_HI}={shard.batch}):"
        )
        units = [_shard_unit(u) for u in group.units]
    else:
        lines.append(f"def {name}(B, rt):")
        units = group.units
    buffers = set()
    for u in units:
        buffers |= _collect_buffers(u)
    for b in sorted(buffers):
        lines.append(f"    {b} = B[{b!r}]")
    indent = 1
    if group.tile_loop is not None:
        sp = group.tile_loop
        lines.append(
            f"    for {sp.var} in range({_scalar_expr(sp.start)}, "
            f"{_scalar_expr(sp.stop)}):  # tile loop"
        )
        indent = 2
    body_start = len(lines)
    for u in units:
        _emit_unit(u, vectorize, indent, lines)
    if len(lines) == body_start and indent == 1 and not buffers:
        lines.append("    pass")


_PRELUDE = '''\
"""Latte-generated program. Machine-written; see repro.codegen."""
import math as _math
import numpy as _np

_inf = float("inf")


def _sigmoid(x):
    return 1.0 / (1.0 + _np.exp(-x))


def _scalar_sigmoid(x):
    return 1.0 / (1.0 + _math.exp(-x))


def _where(c, a, b):
    return a if c else b

'''


def exec_program(source: str, closures: Dict[str, Callable]) -> Dict:
    """Execute generated program source and return its namespace.

    The only free name the emitted code references is ``_CL`` (the
    runtime-closure table). Shared by the cold compile below and by the
    compile cache's thaw path (``repro.cache.freeze``), which re-binds
    cached source to freshly rebuilt closures.
    """
    namespace: Dict[str, object] = {"_CL": closures}
    code = compile(source, "<latte-generated>", "exec")
    exec(code, namespace)
    return namespace


def compile_items(
    fwd_items, bwd_items, closures, vectorize: bool
) -> CompiledProgram:
    """Emit and compile the whole program."""
    lines: List[str] = []
    steps: Dict[str, List[Step]] = {"f": [], "b": []}
    counter = 0
    for tag, items in (("f", fwd_items), ("b", bwd_items)):
        for item in items:
            if isinstance(item, CommCall):
                steps[tag].append(
                    Step(
                        name=f"comm_{item.ensemble}",
                        kind="comm",
                        comm=item,
                        label=f"async_grad_reduce({item.ensemble})",
                        reads=frozenset(item.params),
                    )
                )
                continue
            name = f"_step_{tag}{counter}"
            counter += 1
            lines.append(f"# --- {tag} {item.label}")
            shard = item.shard if isinstance(item, FusedGroup) else None
            _emit_group(item, name, vectorize, lines, shard)
            lines.append("")
            reads, writes, flops = _group_metadata(item)
            steps[tag].append(
                Step(
                    name=name,
                    kind="task",
                    recurrent_reads=item.recurrent_reads,
                    label=item.label,
                    reads=reads,
                    writes=writes,
                    flops=flops,
                    shardable=shard is not None,
                    private_accums=(
                        dict(shard.private_accums) if shard else {}
                    ),
                )
            )
    source = _PRELUDE + "\n".join(lines)
    namespace = exec_program(source, closures)
    for tag in ("f", "b"):
        for step in steps[tag]:
            if step.kind == "task":
                step.fn = namespace[step.name]
    return CompiledProgram(steps["f"], steps["b"], source, closures)
