"""Loop-nest vectorization: scalar loops → NumPy slice/ufunc operations.

In the paper, Latte emits loop-structured C++ annotated with ``#pragma
simd``-style hints and relies on ICC to vectorize (§5.5). In this Python
reproduction the equivalent lowering is performed by the compiler itself:
a scalar loop nest around a single assignment is rewritten so that a
*chosen subset* of loop variables becomes NumPy slices executed as one
array operation, while the remaining loops stay as (few, small) Python
loops.

Selection rules (per :class:`~repro.synthesis.units.LoopUnit`):

* a variable is *sliceable* if, in every buffer axis where it occurs, the
  axis index is affine in it with positive coefficient, it occurs in at
  most one axis per buffer, and the relative order of its axes against
  other chosen variables matches loop order in every buffer (so the
  resulting arrays broadcast without transposes — synthesis lays buffers
  out to satisfy this);
* a variable absent from the assignment target may only be chosen when
  the statement is a reduction (``+=`` / ``max=`` / ``min=``), becoming a
  ``sum``/``max``/``min`` over that result axis;
* the product of chosen extents is capped so reductions cannot allocate
  unbounded temporaries — over the cap, outer reduction loops remain
  scalar.

Every buffer reference is padded with ``None`` (newaxis) entries so all
operands carry the full chosen rank in loop order; broadcasting then
aligns them exactly, and reduction axes are positions in that rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.codegen.exprs import NonAffine, extract_affine, render
from repro.ir import (
    Assign,
    Const,
    Expr,
    Index,
    Var,
    add,
    free_vars,
    mul,
    substitute,
    substitute_stmt,
    walk_exprs,
)
from repro.synthesis.units import LoopSpec, LoopUnit

#: cap on elements of the broadcast temporary a reduction may allocate
VECTOR_TEMP_CAP = 1 << 24


@dataclass
class LoweredUnit:
    """A unit after vectorization: remaining scalar loops + one line."""

    scalar_loops: List[LoopSpec]
    line: str


def _drop_unit_extent_loops(unit: LoopUnit) -> LoopUnit:
    """Substitute away loops with trip count 1."""
    loops, bindings = [], {}
    for sp in unit.loops:
        if sp.extent == 1 and isinstance(sp.start, Const):
            bindings[sp.var] = sp.start
        else:
            loops.append(sp)
    stmt = substitute_stmt(unit.stmt, bindings) if bindings else unit.stmt
    return LoopUnit(loops, stmt, unit.tags)


def _indices_of(stmt: Assign) -> List[Index]:
    """Top-level buffer references of the assignment (target + value).

    Nested Index nodes (buffers used inside index expressions) are
    treated as opaque and block vectorization of their variables."""
    refs = []
    if isinstance(stmt.target, Index):
        refs.append(stmt.target)
    refs.extend(
        e
        for e in walk_exprs(stmt.value)
        if isinstance(e, Index)
    )
    return refs


def _axes_with_var(ref: Index, var: str) -> List[int]:
    return [
        a for a, ix in enumerate(ref.indices) if var in free_vars(ix)
    ]


def _choose_vars(unit: LoopUnit) -> Tuple[List[str], List[str]]:
    """Greedy selection of vectorizable loop variables.

    Returns ``(chosen, reduction)`` where both preserve loop order and
    ``reduction ⊆ chosen``.
    """
    stmt = unit.stmt
    assert isinstance(stmt, Assign)
    refs = _indices_of(stmt)
    target = stmt.target if isinstance(stmt.target, Index) else None
    tvars = free_vars(target) if target is not None else set()

    order = unit.loop_vars()
    pos = {v: i for i, v in enumerate(order)}
    chosen: List[str] = []
    reduction: List[str] = []
    size = 1

    for sp in sorted(unit.loops, key=lambda s: -s.extent):
        v = sp.var
        in_target = v in tvars
        if not in_target:
            if stmt.reduce not in ("add", "max", "min"):
                continue
        if size * sp.extent > VECTOR_TEMP_CAP:
            continue
        ok = True
        for ref in refs:
            axes = _axes_with_var(ref, v)
            if len(axes) > 1:
                ok = False
                break
            for a in axes:
                ix = ref.indices[a]
                # must be a top-level affine expression (no nested Index)
                if any(isinstance(e, Index) for e in walk_exprs(ix)):
                    ok = False
                    break
                try:
                    coeff, _ = extract_affine(ix, v)
                except NonAffine:
                    ok = False
                    break
                if coeff <= 0:
                    ok = False
                    break
                # no other already-chosen var may share this axis
                others = free_vars(ix) - {v}
                if others & set(chosen):
                    ok = False
                    break
            if not ok:
                break
        if not ok:
            continue
        chosen.append(v)
        size *= sp.extent
        if not in_target:
            reduction.append(v)

    chosen.sort(key=pos.get)
    reduction.sort(key=pos.get)
    return chosen, reduction


def _slice_str(ix: Expr, var: str, sp: LoopSpec, scalar_render) -> str:
    """Render axis expression affine in ``var`` as a strided slice."""
    coeff, rest = extract_affine(ix, var)
    start = add(rest, mul(coeff, sp.start))
    stop = add(add(rest, mul(coeff, add(sp.stop, Const(-1)))), Const(1))
    s0, s1 = scalar_render(start), scalar_render(stop)
    return f"{s0}:{s1}" if coeff == 1 else f"{s0}:{s1}:{coeff}"


def render_vector_index(
    ref: Index, chosen: List[str], loops: Dict[str, LoopSpec], scalar_render
) -> str:
    """Render an *operand* buffer access: slices for chosen vars, newaxis
    padding for missing ones, and a (free) transposed view whenever the
    buffer's axis order differs from loop order — so every operand
    carries all chosen dims, in loop order, and broadcasting aligns."""
    parts: List[str] = []
    axis_vars: List[str] = []  # chosen vars in the order their axes appear
    for ix in ref.indices:
        vars_here = [v for v in chosen if v in free_vars(ix)]
        if vars_here:
            v = vars_here[0]
            axis_vars.append(v)
            parts.append(_slice_str(ix, v, loops[v], scalar_render))
        else:
            parts.append(scalar_render(ix))
    dims_order = axis_vars + [v for v in chosen if v not in axis_vars]
    parts.extend("None" for _ in range(len(dims_order) - len(axis_vars)))
    src = f"{ref.buffer}[{', '.join(parts)}]" if parts else ref.buffer
    perm = tuple(dims_order.index(v) for v in chosen)
    if perm != tuple(range(len(perm))):
        src = f"{src}.transpose({perm})"
    return src


def render_target_index(
    ref: Index, chosen: List[str], loops: Dict[str, LoopSpec], scalar_render
) -> Tuple[str, List[str]]:
    """Render the assignment *target*: slices only, no padding.

    Returns the source string and the chosen vars in the target's own
    axis order (so the caller can transpose the RHS to match)."""
    parts: List[str] = []
    axis_vars: List[str] = []
    for ix in ref.indices:
        vars_here = [v for v in chosen if v in free_vars(ix)]
        if vars_here:
            v = vars_here[0]
            axis_vars.append(v)
            parts.append(_slice_str(ix, v, loops[v], scalar_render))
        else:
            parts.append(scalar_render(ix))
    src = f"{ref.buffer}[{', '.join(parts)}]" if parts else ref.buffer
    return src, axis_vars


def lower_unit_vector(unit: LoopUnit) -> LoweredUnit:
    """Vectorize one unit; remaining loops stay scalar."""
    unit = _drop_unit_extent_loops(unit)
    stmt = unit.stmt
    if not isinstance(stmt, Assign):
        raise TypeError("lower_unit_vector expects Assign units")
    chosen, reduction = _choose_vars(unit)
    loops = {sp.var: sp for sp in unit.loops}
    scalar_loops = [sp for sp in unit.loops if sp.var not in chosen]

    def scalar_render(e: Expr) -> str:
        return render(e, _plain_ix, vector=True)

    def _plain_ix(ref: Index) -> str:
        inner = ", ".join(scalar_render(i) for i in ref.indices)
        return f"{ref.buffer}[{inner}]" if ref.indices else ref.buffer

    def vec_ix(ref: Index) -> str:
        return render_vector_index(ref, chosen, loops, scalar_render)

    rhs = render(stmt.value, vec_ix, vector=True)
    has_arrays = any(isinstance(e, Index) for e in walk_exprs(stmt.value))
    red_axes = tuple(chosen.index(v) for v in reduction)
    kept = [v for v in chosen if v not in reduction]

    if isinstance(stmt.target, Index):
        tgt, tgt_axis_vars = render_target_index(
            stmt.target, chosen, loops, scalar_render
        )
    else:
        tgt, tgt_axis_vars = stmt.target.name, []

    def reduce_and_align(expr: str, how: str) -> str:
        """Apply the reduction over red_axes and transpose the result to
        the target's own axis order when it differs from loop order."""
        if red_axes:
            expr = f"({expr}).{how}(axis={red_axes})"
        if has_arrays and tgt_axis_vars and tgt_axis_vars != kept:
            perm = tuple(kept.index(v) for v in tgt_axis_vars)
            expr = f"_np.transpose({expr}, {perm})"
        return expr

    if stmt.reduce is None:
        line = f"{tgt} = {reduce_and_align(rhs, 'sum')}"
    elif stmt.reduce == "add":
        if red_axes and not has_arrays:
            count = 1
            for v in reduction:
                count *= loops[v].extent
            rhs = f"({rhs}) * {count}"
            line = f"{tgt} += {rhs}"
        else:
            line = f"{tgt} += {reduce_and_align(rhs, 'sum')}"
    elif stmt.reduce == "mul":
        line = f"{tgt} *= {reduce_and_align(rhs, 'prod')}"
    elif stmt.reduce in ("max", "min"):
        fn = "_np.maximum" if stmt.reduce == "max" else "_np.minimum"
        rfn = "max" if stmt.reduce == "max" else "min"
        rhs = reduce_and_align(rhs, rfn)
        # out= needs an array view: only valid when the target itself
        # keeps a vectorized axis, not merely when the rhs does (a fully
        # scalar-indexed target is a 0-d extraction, not a view)
        if tgt_axis_vars:
            line = f"{fn}({tgt}, {rhs}, out={tgt})"
        else:
            line = f"{tgt} = {fn}({tgt}, {rhs})"
    else:  # pragma: no cover
        raise ValueError(f"unknown reduce {stmt.reduce!r}")
    return LoweredUnit(scalar_loops, line)


def lower_unit_scalar(unit: LoopUnit) -> LoweredUnit:
    """O0 oracle: every loop stays a Python loop (element-at-a-time)."""
    unit = _drop_unit_extent_loops(unit)
    stmt = unit.stmt
    if not isinstance(stmt, Assign):
        raise TypeError("lower_unit_scalar expects Assign units")

    def plain(e: Expr) -> str:
        return render(e, _ix, vector=False)

    def _ix(ref: Index) -> str:
        inner = ", ".join(plain(i) for i in ref.indices)
        return f"{ref.buffer}[{inner}]" if ref.indices else ref.buffer

    tgt = plain(stmt.target) if isinstance(stmt.target, Index) else stmt.target.name
    rhs = plain(stmt.value)
    if stmt.reduce is None:
        line = f"{tgt} = {rhs}"
    elif stmt.reduce == "add":
        line = f"{tgt} += {rhs}"
    elif stmt.reduce == "mul":
        line = f"{tgt} *= {rhs}"
    elif stmt.reduce == "max":
        line = f"{tgt} = max({tgt}, {rhs})"
    elif stmt.reduce == "min":
        line = f"{tgt} = min({tgt}, {rhs})"
    else:  # pragma: no cover
        raise ValueError(stmt.reduce)
    return LoweredUnit(list(unit.loops), line)
