"""Shared expression rendering and affine-form extraction for codegen."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir import (
    BinOp,
    Call,
    Compare,
    Const,
    Expr,
    Index,
    NewAxis,
    SliceExpr,
    UnaryOp,
    Var,
    add,
    free_vars,
    mul,
)


class NonAffine(ValueError):
    """An index expression is not affine in the requested variable."""


def extract_affine(e: Expr, var: str) -> Tuple[int, Expr]:
    """Decompose ``e`` as ``coeff * var + rest`` with integer ``coeff``.

    ``rest`` may reference other variables. Raises :class:`NonAffine` when
    the decomposition does not exist (the variable under a nonlinear
    operator or multiplied by a non-constant).
    """
    if isinstance(e, Var):
        return (1, Const(0)) if e.name == var else (0, e)
    if isinstance(e, Const):
        return 0, e
    if isinstance(e, BinOp):
        if e.op == "+":
            cl, rl = extract_affine(e.left, var)
            cr, rr = extract_affine(e.right, var)
            return cl + cr, add(rl, rr)
        if e.op == "-":
            cl, rl = extract_affine(e.left, var)
            cr, rr = extract_affine(e.right, var)
            if isinstance(rr, Const) and rr.value == 0:
                return cl - cr, rl
            if isinstance(rr, Const) and isinstance(rl, Const):
                return cl - cr, Const(rl.value - rr.value)
            return cl - cr, BinOp("-", rl, rr)
        if e.op == "*":
            lv, rv = var in free_vars(e.left), var in free_vars(e.right)
            if lv and rv:
                raise NonAffine(f"{var} appears quadratically")
            if not lv and not rv:
                return 0, e
            scale, part = (e.right, e.left) if lv else (e.left, e.right)
            if not isinstance(scale, Const):
                raise NonAffine(f"{var} scaled by non-constant")
            c, r = extract_affine(part, var)
            return c * int(scale.value), mul(scale, r)
    if isinstance(e, UnaryOp) and e.op == "-":
        c, r = extract_affine(e.operand, var)
        return -c, UnaryOp("-", r)
    if var in free_vars(e):
        raise NonAffine(f"{var} under unsupported operator")
    return 0, e


_VEC_FUNCS = {
    "max": "_np.maximum",
    "min": "_np.minimum",
    "exp": "_np.exp",
    "log": "_np.log",
    "sqrt": "_np.sqrt",
    "tanh": "_np.tanh",
    "abs": "_np.abs",
    "where": "_np.where",
    "sigmoid": "_sigmoid",
}

_SCALAR_FUNCS = {
    "max": "max",
    "min": "min",
    "exp": "_math.exp",
    "log": "_math.log",
    "sqrt": "_math.sqrt",
    "tanh": "_math.tanh",
    "abs": "abs",
    "where": "_where",
    "sigmoid": "_scalar_sigmoid",
}


def render(e: Expr, index_renderer, vector: bool) -> str:
    """Render an expression to Python source.

    ``index_renderer(Index) -> str`` decides how buffer accesses print
    (scalar subscripts vs slice tuples).
    """

    def r(x: Expr) -> str:
        if isinstance(x, SliceExpr):
            step = ""
            if not (isinstance(x.step, Const) and x.step.value == 1):
                step = f":{r(x.step)}"
            return f"{r(x.start)}:{r(x.stop)}{step}"
        if isinstance(x, NewAxis):
            return "None"
        if isinstance(x, Const):
            v = x.value
            if v == float("inf"):
                return "_inf"
            if v == float("-inf"):
                return "(-_inf)"
            return repr(v)
        if isinstance(x, Var):
            return x.name
        if isinstance(x, Index):
            return index_renderer(x)
        if isinstance(x, BinOp):
            return f"({r(x.left)} {x.op} {r(x.right)})"
        if isinstance(x, UnaryOp):
            return f"({x.op}{r(x.operand)})"
        if isinstance(x, Compare):
            return f"({r(x.left)} {x.op} {r(x.right)})"
        if isinstance(x, Call):
            table = _VEC_FUNCS if vector else _SCALAR_FUNCS
            if x.func not in table:
                raise ValueError(f"unknown intrinsic {x.func!r}")
            return f"{table[x.func]}({', '.join(r(a) for a in x.args)})"
        raise TypeError(f"cannot render {type(x).__name__}")

    return r(e)


def render_plain_index(ix: Index) -> str:
    """Scalar buffer access ``buf[i, j]``."""
    parts = ", ".join(
        render(i, render_plain_index, vector=False) for i in ix.indices
    )
    return f"{ix.buffer}[{parts}]" if ix.indices else ix.buffer
